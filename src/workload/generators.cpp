#include "workload/generators.hpp"

#include <algorithm>
#include <cassert>

namespace topfull::workload {

sim::ApiId ApiMix::Sample(double u) const {
  double total = 0.0;
  for (const double w : weights) total += w;
  assert(total > 0.0 && "API mix must have positive total weight");
  double acc = 0.0;
  const double target = u * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<sim::ApiId>(i);
  }
  return static_cast<sim::ApiId>(weights.size() - 1);
}

ClosedLoopPool::ClosedLoopPool(sim::Application* app, ClosedLoopConfig config,
                               Schedule users, Rng rng)
    : app_(app), config_(std::move(config)), users_(std::move(users)), rng_(rng) {}

void ClosedLoopPool::Start() {
  if (started_) return;
  started_ = true;
  Reconcile();
  app_->sim().SchedulePeriodic(app_->sim().Now() + config_.reconcile_period,
                               config_.reconcile_period, [this]() { Reconcile(); });
}

void ClosedLoopPool::Reconcile() {
  target_users_ = static_cast<int>(users_.At(app_->sim().Now()));
  // Ramp-down is gradual: excess users terminate at their next loop
  // boundary (a user whose index >= target exits instead of re-issuing).
  if (static_cast<int>(states_.size()) < target_users_) states_.resize(target_users_);
  while (live_users_ < target_users_) {
    const int index = live_users_++;
    UserLoop(index);
  }
}

int ClosedLoopPool::UserPriority(int user_index) const {
  if (config_.user_priority_lo < 0) return -1;
  const int lo = config_.user_priority_lo;
  const int hi = std::max(config_.user_priority_hi, lo);
  return lo + user_index % (hi - lo + 1);
}

void ClosedLoopPool::UserLoop(int user_index) {
  if (user_index >= target_users_) {
    --live_users_;
    return;
  }
  const sim::ApiId api = config_.mix.Sample(rng_.NextDouble());
  UserState& st = states_[static_cast<std::size_t>(user_index)];
  st.api = api;
  st.retries_left = config_.max_client_retries;
  if (outcomes_.size() < states_.size()) outcomes_.resize(states_.size());
  ++outcomes_[static_cast<std::size_t>(user_index)].intents;
  IssueAttempt(user_index);
}

void ClosedLoopPool::IssueAttempt(int user_index) {
  UserState& st = states_[static_cast<std::size_t>(user_index)];
  const std::uint32_t epoch = ++st.epoch;
  st.waiting = true;
  st.timeout = des::Simulation::TimerHandle{};
  ++outcomes_[static_cast<std::size_t>(user_index)].attempts;
  sim::SubmitOptions options;
  options.user_priority = UserPriority(user_index);
  // The capture {pool, index, epoch} fits std::function's small buffer, so
  // submitting costs no allocation; the epoch check drops late responses
  // (the user already gave up — the server work was wasted).
  app_->Submit(st.api, options,
               [this, user_index, epoch](sim::Outcome outcome, SimTime) {
                 UserState& s = states_[static_cast<std::size_t>(user_index)];
                 if (s.epoch != epoch || !s.waiting) return;
                 s.waiting = false;
                 if (s.timeout.valid()) {
                   app_->sim().Cancel(s.timeout);
                   s.timeout = des::Simulation::TimerHandle{};
                 }
                 OnAttemptDone(user_index, outcome == sim::Outcome::kCompleted);
               });
  UserState& after = states_[static_cast<std::size_t>(user_index)];
  if (after.epoch != epoch || !after.waiting) return;  // resolved synchronously
  after.timeout = app_->sim().ScheduleAfter(
      config_.client_timeout, [this, user_index, epoch]() {
        UserState& s = states_[static_cast<std::size_t>(user_index)];
        if (s.epoch != epoch || !s.waiting) return;
        s.waiting = false;  // client gives up; a late response is ignored
        s.timeout = des::Simulation::TimerHandle{};
        OnAttemptDone(user_index, false);
      });
}

void ClosedLoopPool::OnAttemptDone(int user_index, bool ok) {
  UserState& st = states_[static_cast<std::size_t>(user_index)];
  UserOutcomes& outcome = outcomes_[static_cast<std::size_t>(user_index)];
  if (ok) {
    ++outcome.ok;
    UserThink(user_index);
    return;
  }
  if (st.retries_left > 0) {
    --st.retries_left;
    const std::uint32_t epoch = st.epoch;
    app_->sim().ScheduleAfter(config_.client_retry_backoff,
                              [this, user_index, epoch]() {
                                UserState& s =
                                    states_[static_cast<std::size_t>(user_index)];
                                if (s.epoch != epoch) return;  // superseded
                                IssueAttempt(user_index);
                              });
    return;
  }
  ++outcome.failed;
  UserThink(user_index);
}

void ClosedLoopPool::UserThink(int user_index) {
  const double jitter = 1.0 + config_.think_jitter * rng_.Uniform(-1.0, 1.0);
  const auto think = static_cast<SimTime>(
      std::max(0.0, static_cast<double>(config_.think) * jitter));
  app_->sim().ScheduleAfter(think, [this, user_index]() { UserLoop(user_index); });
}

OpenLoopGenerator::OpenLoopGenerator(sim::Application* app, sim::ApiId api,
                                     Schedule rate, Rng rng)
    : app_(app), api_(api), rate_(std::move(rate)), rng_(rng) {}

void OpenLoopGenerator::Start() { ScheduleNext(); }

void OpenLoopGenerator::ScheduleNext() {
  const double rate = rate_.At(app_->sim().Now());
  if (rate <= 0.0) {
    // Idle; poll for the schedule turning on.
    app_->sim().ScheduleAfter(Millis(100), [this]() { ScheduleNext(); });
    return;
  }
  const SimTime gap = std::max<SimTime>(1, Seconds(rng_.Exponential(1.0 / rate)));
  app_->sim().ScheduleAfter(gap, [this]() {
    app_->Submit(api_);
    ScheduleNext();
  });
}

ClosedLoopPool& TrafficDriver::AddClosedLoop(ClosedLoopConfig config, Schedule users) {
  if (scope_.api_origin != nullptr) {
    // Apportion: this shard keeps the users proportional to its share of
    // the mix weight and drops foreign APIs from the mix. When the share
    // is exactly 1 (identical float sums), nothing is touched.
    double total = 0.0;
    double owned = 0.0;
    for (std::size_t i = 0; i < config.mix.weights.size(); ++i) {
      total += config.mix.weights[i];
      if ((*scope_.api_origin)[i] == scope_.shard) owned += config.mix.weights[i];
    }
    const double share = total > 0.0 ? owned / total : 0.0;
    if (share != 1.0) {
      for (std::size_t i = 0; i < config.mix.weights.size(); ++i) {
        if ((*scope_.api_origin)[i] != scope_.shard) config.mix.weights[i] = 0.0;
      }
      // share == 0 leaves an all-zero mix, but then the scaled schedule
      // keeps the pool at zero users forever and the mix is never sampled.
      users = users.Scaled(share);
    }
  }
  // Pool 0 keeps the historical fork label (byte-identical single-pool
  // runs); additional pools get decorrelated streams.
  const std::uint64_t salt =
      HashLabel("closed-loop") ^ static_cast<std::uint64_t>(pools_.size());
  pools_.push_back(std::make_unique<ClosedLoopPool>(
      app_, std::move(config), std::move(users), app_->rng().Fork(salt)));
  pools_.back()->Start();
  return *pools_.back();
}

OpenLoopGenerator& TrafficDriver::AddOpenLoop(sim::ApiId api, Schedule rate) {
  open_.push_back(std::make_unique<OpenLoopGenerator>(
      app_, api, std::move(rate),
      app_->rng().Fork(HashLabel("open-loop") ^ static_cast<std::uint64_t>(api))));
  const bool owned = scope_.api_origin == nullptr ||
                     (*scope_.api_origin)[static_cast<std::size_t>(api)] ==
                         scope_.shard;
  // A foreign API's generator is registered (RNG fork order stays fixed)
  // but never started, so it schedules nothing — not even idle polls.
  if (owned) open_.back()->Start();
  return *open_.back();
}

}  // namespace topfull::workload

// Traffic generators.
//
// ClosedLoopPool models Locust: a scheduled number of concurrent users, each
// repeatedly issuing one request (API sampled from a weighted mix), waiting
// for the response up to a client timeout, then thinking ~1 s — "N users
// invoking 1 request per second" (§6). OpenLoopGenerator issues Poisson
// arrivals at a scheduled rate for experiments that need precise offered
// load per API.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/app.hpp"
#include "workload/schedule.hpp"

namespace topfull::workload {

/// Weighted per-API request mix. Weights need not be normalised.
struct ApiMix {
  std::vector<double> weights;  ///< indexed by ApiId; missing tail = 0.

  /// Samples an ApiId given a uniform [0,1) draw.
  sim::ApiId Sample(double u) const;
};

struct ClosedLoopConfig {
  ApiMix mix;
  /// Mean think time between a user's requests.
  SimTime think = Seconds(1);
  /// Uniform jitter fraction applied to think time (0.1 = +/-10 %).
  double think_jitter = 0.1;
  /// Client-side wait deadline; the user moves on after this even if the
  /// request is still being processed (the server work is then wasted).
  SimTime client_timeout = Seconds(5);
  /// How often the pool reconciles the live user count to the schedule.
  SimTime reconcile_period = Seconds(1);
};

/// A pool of closed-loop users whose size follows a Schedule.
class ClosedLoopPool {
 public:
  ClosedLoopPool(sim::Application* app, ClosedLoopConfig config, Schedule users,
                 Rng rng);

  /// Begins spawning users at the current sim time.
  void Start();

  int LiveUsers() const { return live_users_; }

 private:
  /// Per-user request state, reused across the user's whole lifetime (no
  /// per-request allocation). `epoch` stamps each issued request so a late
  /// response or a stale pointer can never be mistaken for the current
  /// one; the client-timeout timer is cancelled when the response wins.
  struct UserState {
    std::uint32_t epoch = 0;
    bool waiting = false;
    des::Simulation::TimerHandle timeout{};
  };

  void Reconcile();
  void UserLoop(int user_index);
  void UserThink(int user_index);

  sim::Application* app_;
  ClosedLoopConfig config_;
  Schedule users_;
  Rng rng_;
  std::vector<UserState> states_;
  int live_users_ = 0;
  int target_users_ = 0;
  bool started_ = false;
};

/// Open-loop Poisson arrivals for one API at a scheduled rate (rps).
class OpenLoopGenerator {
 public:
  OpenLoopGenerator(sim::Application* app, sim::ApiId api, Schedule rate, Rng rng);

  void Start();

 private:
  void ScheduleNext();

  sim::Application* app_;
  sim::ApiId api_;
  Schedule rate_;
  Rng rng_;
};

/// Convenience owner for a set of generators driving one Application.
class TrafficDriver {
 public:
  /// Restricts the driver to the APIs originating on one shard of a
  /// sharded run: closed-loop mixes are masked to owned APIs with the user
  /// schedule scaled by the owned share of the mix weight, and open-loop
  /// generators for non-owned APIs are registered but never started. A
  /// scope that owns every requested API is an exact pass-through, which
  /// is what keeps shards=1 byte-identical to an unscoped run.
  struct ShardScope {
    const std::vector<int>* api_origin = nullptr;  ///< ApiId -> shard
    int shard = 0;
  };

  explicit TrafficDriver(sim::Application* app) : app_(app) {}

  /// Installs the shard scope; affects generators added afterwards.
  void SetShardScope(ShardScope scope) { scope_ = scope; }

  /// Adds and starts a closed-loop pool.
  ClosedLoopPool& AddClosedLoop(ClosedLoopConfig config, Schedule users);

  /// Adds and starts an open-loop generator for `api`.
  OpenLoopGenerator& AddOpenLoop(sim::ApiId api, Schedule rate);

 private:
  sim::Application* app_;
  ShardScope scope_{};
  std::vector<std::unique_ptr<ClosedLoopPool>> pools_;
  std::vector<std::unique_ptr<OpenLoopGenerator>> open_;
};

}  // namespace topfull::workload

// Traffic generators.
//
// ClosedLoopPool models Locust: a scheduled number of concurrent users, each
// repeatedly issuing one request (API sampled from a weighted mix), waiting
// for the response up to a client timeout, then thinking ~1 s — "N users
// invoking 1 request per second" (§6). OpenLoopGenerator issues Poisson
// arrivals at a scheduled rate for experiments that need precise offered
// load per API.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/app.hpp"
#include "workload/schedule.hpp"

namespace topfull::workload {

/// Weighted per-API request mix. Weights need not be normalised.
struct ApiMix {
  std::vector<double> weights;  ///< indexed by ApiId; missing tail = 0.

  /// Samples an ApiId given a uniform [0,1) draw.
  sim::ApiId Sample(double u) const;
};

struct ClosedLoopConfig {
  ApiMix mix;
  /// Mean think time between a user's requests.
  SimTime think = Seconds(1);
  /// Uniform jitter fraction applied to think time (0.1 = +/-10 %).
  double think_jitter = 0.1;
  /// Client-side wait deadline; the user moves on after this even if the
  /// request is still being processed (the server work is then wasted).
  SimTime client_timeout = Seconds(5);
  /// How often the pool reconciles the live user count to the schedule.
  SimTime reconcile_period = Seconds(1);

  /// Client-side retries: a user whose transaction fails (entry rejection,
  /// service shed, or client timeout) re-issues the same API call up to
  /// this many times after `client_retry_backoff`, before giving up and
  /// thinking. Combined with per-hop server retries this is the compound
  /// retry-storm amplifier; 0 keeps the legacy fire-and-move-on user.
  int max_client_retries = 0;
  SimTime client_retry_backoff = Millis(100);

  /// Stable per-user DAGOR priority band: user i gets priority
  /// lo + i % (hi - lo + 1). Negative `user_priority_lo` keeps the legacy
  /// behaviour (a fresh random priority per request at the gateway).
  int user_priority_lo = -1;
  int user_priority_hi = -1;

  /// Tenant-class label for fairness reporting ("" = unnamed).
  std::string tenant;
};

/// Whole-lifetime outcome counters of one closed-loop user.
struct UserOutcomes {
  std::uint64_t intents = 0;   ///< transactions started
  std::uint64_t attempts = 0;  ///< submissions, including client retries
  std::uint64_t ok = 0;        ///< transactions answered successfully in time
  std::uint64_t failed = 0;    ///< transactions abandoned after all retries

  /// Success fraction of this user's finished transactions.
  double SuccessRate() const {
    const std::uint64_t settled = ok + failed;
    return settled == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(settled);
  }
};

/// A pool of closed-loop users whose size follows a Schedule.
class ClosedLoopPool {
 public:
  ClosedLoopPool(sim::Application* app, ClosedLoopConfig config, Schedule users,
                 Rng rng);

  /// Begins spawning users at the current sim time.
  void Start();

  int LiveUsers() const { return live_users_; }

  /// Per-user outcome counters, indexed by user slot (slot i is the same
  /// "person" across ramp-downs and re-spawns). Pure bookkeeping: tracking
  /// them perturbs neither the event sequence nor any RNG stream.
  const std::vector<UserOutcomes>& Outcomes() const { return outcomes_; }

  /// The stable priority of user `i` under the configured band, or -1 when
  /// the pool uses legacy per-request sampling.
  int UserPriority(int user_index) const;

  const ClosedLoopConfig& config() const { return config_; }

 private:
  /// Per-user request state, reused across the user's whole lifetime (no
  /// per-request allocation). `epoch` stamps each issued request so a late
  /// response or a stale pointer can never be mistaken for the current
  /// one; the client-timeout timer is cancelled when the response wins.
  struct UserState {
    std::uint32_t epoch = 0;
    bool waiting = false;
    sim::ApiId api = sim::kNoApi;
    int retries_left = 0;
    des::Simulation::TimerHandle timeout{};
  };

  void Reconcile();
  void UserLoop(int user_index);
  void IssueAttempt(int user_index);
  void OnAttemptDone(int user_index, bool ok);
  void UserThink(int user_index);

  sim::Application* app_;
  ClosedLoopConfig config_;
  Schedule users_;
  Rng rng_;
  std::vector<UserState> states_;
  std::vector<UserOutcomes> outcomes_;
  int live_users_ = 0;
  int target_users_ = 0;
  bool started_ = false;
};

/// Open-loop Poisson arrivals for one API at a scheduled rate (rps).
class OpenLoopGenerator {
 public:
  OpenLoopGenerator(sim::Application* app, sim::ApiId api, Schedule rate, Rng rng);

  void Start();

 private:
  void ScheduleNext();

  sim::Application* app_;
  sim::ApiId api_;
  Schedule rate_;
  Rng rng_;
};

/// Convenience owner for a set of generators driving one Application.
class TrafficDriver {
 public:
  /// Restricts the driver to the APIs originating on one shard of a
  /// sharded run: closed-loop mixes are masked to owned APIs with the user
  /// schedule scaled by the owned share of the mix weight, and open-loop
  /// generators for non-owned APIs are registered but never started. A
  /// scope that owns every requested API is an exact pass-through, which
  /// is what keeps shards=1 byte-identical to an unscoped run.
  struct ShardScope {
    const std::vector<int>* api_origin = nullptr;  ///< ApiId -> shard
    int shard = 0;
  };

  explicit TrafficDriver(sim::Application* app) : app_(app) {}

  /// Installs the shard scope; affects generators added afterwards.
  void SetShardScope(ShardScope scope) { scope_ = scope; }

  /// Adds and starts a closed-loop pool.
  ClosedLoopPool& AddClosedLoop(ClosedLoopConfig config, Schedule users);

  /// Adds and starts an open-loop generator for `api`.
  OpenLoopGenerator& AddOpenLoop(sim::ApiId api, Schedule rate);

  /// All closed-loop pools added so far (fairness scenarios read each
  /// pool's per-user outcome counters after the run).
  const std::vector<std::unique_ptr<ClosedLoopPool>>& pools() const {
    return pools_;
  }

 private:
  sim::Application* app_;
  ShardScope scope_{};
  std::vector<std::unique_ptr<ClosedLoopPool>> pools_;
  std::vector<std::unique_ptr<OpenLoopGenerator>> open_;
};

}  // namespace topfull::workload

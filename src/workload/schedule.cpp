#include "workload/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace topfull::workload {

Schedule Schedule::Constant(double v) {
  Schedule s;
  s.points_.push_back({0, v});
  return s;
}

Schedule Schedule::Spike(double base, SimTime start, SimTime duration, double high) {
  Schedule s = Constant(base);
  s.Then(start, high).Then(start + duration, base);
  return s;
}

Schedule Schedule::Ramp(double from, double to, SimTime start, SimTime duration,
                        SimTime step) {
  Schedule s = Constant(from);
  if (duration <= 0 || step <= 0) {
    s.Then(start, to);
    return s;
  }
  const auto steps = static_cast<int>(duration / step);
  for (int i = 1; i <= steps; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(steps);
    s.Then(start + i * step, from + (to - from) * frac);
  }
  return s;
}

Schedule Schedule::Diurnal(double low, double high, SimTime period,
                           SimTime horizon, SimTime step) {
  Schedule s = Constant(low);
  if (period <= 0 || step <= 0) return s;
  constexpr double kTau = 6.283185307179586476925286766559;
  for (SimTime t = step; t < horizon; t += step) {
    const double phase = kTau * static_cast<double>(t) / static_cast<double>(period);
    s.Then(t, low + (high - low) * 0.5 * (1.0 - std::cos(phase)));
  }
  return s;
}

Schedule Schedule::FlashCrowd(double base, SimTime at, double peak,
                              SimTime ramp_up, SimTime hold, SimTime decay,
                              SimTime step) {
  Schedule s = Ramp(base, peak, at, ramp_up, step);
  const SimTime down = at + ramp_up + hold;
  if (decay <= 0 || step <= 0) {
    s.Then(down, base);
    return s;
  }
  const auto steps = static_cast<int>(decay / step);
  for (int i = 1; i <= steps; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(steps);
    s.Then(down + i * step, peak + (base - peak) * frac);
  }
  return s;
}

Schedule& Schedule::Then(SimTime t, double v) {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const Point& p, SimTime when) { return p.t < when; });
  if (it != points_.end() && it->t == t) {
    it->v = v;
  } else {
    points_.insert(it, {t, v});
  }
  return *this;
}

Schedule Schedule::Scaled(double factor) const {
  Schedule s = *this;
  for (auto& p : s.points_) p.v *= factor;
  return s;
}

double Schedule::At(SimTime t) const {
  double value = 0.0;
  for (const auto& p : points_) {
    if (p.t > t) break;
    value = p.v;
  }
  return value;
}

}  // namespace topfull::workload

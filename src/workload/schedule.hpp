// Piecewise-constant time schedules for offered load and user counts.
//
// A Schedule maps sim time to a value (requests/second, user count, ...).
// Experiments compose them fluently:
//   Schedule::Constant(500).Then(Seconds(60), 3000)        // step surge
//   Schedule::Spike(100, Seconds(120), Seconds(120), 900)  // 2-min spike
#pragma once

#include <vector>

#include "common/sim_time.hpp"

namespace topfull::workload {

class Schedule {
 public:
  /// Value `v` from t=0 onward.
  static Schedule Constant(double v);

  /// Base value, jumping to `high` during [start, start+duration).
  static Schedule Spike(double base, SimTime start, SimTime duration, double high);

  /// Linear ramp from `from` to `to` over [start, start+duration), stepped
  /// at `step` granularity, holding `to` afterwards.
  static Schedule Ramp(double from, double to, SimTime start, SimTime duration,
                       SimTime step = Seconds(1));

  /// Diurnal load curve: a raised-cosine oscillation between `low` and
  /// `high` with the given period, starting at the trough, sampled every
  /// `step` over [0, horizon) and holding the last sample afterwards. This
  /// is the piecewise replay used for hours-long day/night scenarios.
  static Schedule Diurnal(double low, double high, SimTime period,
                          SimTime horizon, SimTime step = Seconds(10));

  /// Flash crowd: `base` until `at`, a linear climb to `peak` over
  /// `ramp_up`, a plateau of `hold`, then a linear decay back to `base`
  /// over `decay`.
  static Schedule FlashCrowd(double base, SimTime at, double peak,
                             SimTime ramp_up, SimTime hold, SimTime decay,
                             SimTime step = Seconds(1));

  /// Adds a breakpoint: value becomes `v` from time `t` onward. Breakpoints
  /// may be added in any order.
  Schedule& Then(SimTime t, double v);

  /// Value at time `t` (the most recent breakpoint at or before `t`).
  double At(SimTime t) const;

  /// A copy with every value multiplied by `factor`. Used to apportion a
  /// global user schedule across shards by their share of the API mix.
  Schedule Scaled(double factor) const;

 private:
  struct Point {
    SimTime t;
    double v;
  };
  std::vector<Point> points_;  // kept sorted by t
};

}  // namespace topfull::workload

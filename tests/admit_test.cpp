// Tests for the concurrent admission plane (src/admit/, DESIGN.md §15).
//
// Four families:
//  * exact single-thread equivalence: AtomicTokenBucket is a drop-in twin of
//    common::TokenBucket — same decision stream AND the same bit pattern of
//    internal state over randomized admit/SetRate/Configure schedules;
//  * multi-thread safety properties: token conservation (admitted <=
//    rate·T + burst) under N hammering threads, with and without a
//    concurrent reconfiguration storm (runs under TSan in CI);
//  * AdmissionPlane semantics: slot registry, fail-open behaviour, publish
//    coalescing, CachedGate refresh, snapshot lifetime across Remove
//    (use-after-free is what the ASan job checks here);
//  * hot-path hygiene: the steady-state admit allocates nothing.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "admit/admitter.hpp"
#include "admit/atomic_token_bucket.hpp"
#include "admit/packed_atomic.hpp"
#include "admit/plane.hpp"
#include "common/rng.hpp"
#include "common/token_bucket.hpp"

// --- counting allocator hook (for the zero-allocation fast-path check) -------

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace topfull::admit {
namespace {

// --- Packed 16-byte atomic ---------------------------------------------------

TEST(PackedAtomicTest, StoreLoadRoundTrip) {
  Packed128 cell{};
  Store(&cell, Packed128{3.25, 17}, Packed128{});
  const Packed128 got = Load(&cell, Packed128{});
  EXPECT_EQ(got.tokens, 3.25);
  EXPECT_EQ(got.last, 17);
  // A wrong hint still returns the true value.
  const Packed128 got2 = Load(&cell, Packed128{-1.0, -1});
  EXPECT_EQ(got2.tokens, 3.25);
  EXPECT_EQ(got2.last, 17);
}

TEST(PackedAtomicTest, CompareExchangeContract) {
  Packed128 cell{};
  Store(&cell, Packed128{1.0, 1}, Packed128{});
  Packed128 expected{2.0, 2};  // wrong on purpose
  EXPECT_FALSE(CompareExchange(&cell, expected, Packed128{9.0, 9}));
  // Failure refreshed `expected` with the current value.
  EXPECT_EQ(expected.tokens, 1.0);
  EXPECT_EQ(expected.last, 1);
  EXPECT_TRUE(CompareExchange(&cell, expected, Packed128{9.0, 9}));
  const Packed128 got = Load(&cell, Packed128{});
  EXPECT_EQ(got.tokens, 9.0);
  EXPECT_EQ(got.last, 9);
}

// --- Single-thread equivalence vs common::TokenBucket ------------------------

/// Runs the same randomized schedule of admits, rate changes and resets
/// against both implementations and demands exact agreement of decisions
/// and observable state (PeekTokens must match bit for bit — both sides
/// execute the same double expressions in the same order).
void RunEquivalenceSchedule(std::uint64_t seed) {
  Rng rng(seed);
  const double rate0 = rng.Uniform(1.0, 2000.0);
  const double burst0 = rng.Uniform(0.5, 60.0);  // < 1 exercises the clamp
  TokenBucket reference(rate0, burst0);
  AtomicTokenBucket atomic(rate0, burst0);
  EXPECT_EQ(reference.rate(), atomic.rate());
  EXPECT_EQ(reference.burst(), atomic.burst());

  SimTime now = 0;
  for (int i = 0; i < 20000; ++i) {
    const double p = rng.Uniform(0.0, 1.0);
    if (p < 0.015) {
      // Rate change preserving the balance (TokenBucket::SetRate semantics).
      const double rate = rng.Uniform(0.0, 3000.0);
      reference.SetRate(rate);
      atomic.SetRate(rate);
    } else if (p < 0.02) {
      // Full reset — the controller's historical fresh-bucket assignment.
      const double rate = rng.Uniform(0.0, 3000.0);
      const double burst = rng.Uniform(0.5, 60.0);
      reference = TokenBucket(rate, burst);
      atomic.Configure(rate, burst);
    } else {
      // 0-µs steps cover same-instant bursts; occasional long gaps cover
      // the refill clamp at the full burst.
      const SimTime dt = rng.Bernoulli(0.05) ? rng.UniformInt(0, 5'000'000)
                                             : rng.UniformInt(0, 2000);
      now += dt;
      ASSERT_EQ(reference.TryAdmit(now), atomic.TryAdmit(now))
          << "decision diverged at step " << i << " t=" << now;
    }
    ASSERT_EQ(reference.PeekTokens(now), atomic.PeekTokens(now))
        << "state diverged at step " << i << " t=" << now;
    ASSERT_EQ(reference.rate(), atomic.rate());
    ASSERT_EQ(reference.burst(), atomic.burst());
  }
  // Sequential use never exhausts the CAS retry budget.
  EXPECT_EQ(atomic.contention_rejects(), 0u);
}

class AtomicBucketEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtomicBucketEquivalenceSweep, ExactTwinOfTokenBucket) {
  RunEquivalenceSchedule(GetParam() * 6361);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomicBucketEquivalenceSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(AtomicBucketTest, ConfigureMatchesFreshBucketClamps) {
  AtomicTokenBucket bucket(-5.0, 0.25);  // clamps: rate >= 0, burst >= 1
  EXPECT_EQ(bucket.rate(), 0.0);
  EXPECT_EQ(bucket.burst(), 1.0);
  EXPECT_EQ(bucket.PeekTokens(0), 1.0);  // starts full
  EXPECT_TRUE(bucket.TryAdmit(0));       // spend the single token
  EXPECT_FALSE(bucket.TryAdmit(0));      // zero rate: never refills
  EXPECT_FALSE(bucket.TryAdmit(Seconds(3600)));
  bucket.Configure(10.0, 5.0);  // reset refills to the new burst at t=0
  EXPECT_EQ(bucket.PeekTokens(0), 5.0);
  EXPECT_TRUE(bucket.TryAdmit(0));
}

TEST(AtomicBucketTest, PeekTokensDoesNotMutate) {
  AtomicTokenBucket bucket(100.0, 10.0);
  ASSERT_TRUE(bucket.TryAdmit(1000));
  const double before = bucket.PeekTokens(500'000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(bucket.PeekTokens(500'000), before);
  }
  // The preview looked half a second ahead, but the real state still refills
  // from the last admit instant, not from the previewed time.
  TokenBucket reference(100.0, 10.0);
  ASSERT_TRUE(reference.TryAdmit(1000));
  EXPECT_EQ(reference.TryAdmit(500'001), bucket.TryAdmit(500'001));
  EXPECT_EQ(reference.PeekTokens(500'001), bucket.PeekTokens(500'001));
}

// --- Multi-thread safety properties ------------------------------------------

/// N threads hammer one bucket; time is a shared monotonic microsecond
/// counter each op advances by `step_us`. Whatever the interleaving, total
/// admits can never exceed burst + rate * elapsed (token conservation: every
/// admit CASes the true cell, so overdraw is impossible).
void ConservationUnderContention(int threads, double rate, double burst,
                                 SimTime step_us, int ops_per_thread) {
  AtomicTokenBucket bucket(rate, burst);
  std::atomic<SimTime> clock{0};
  std::atomic<std::uint64_t> admitted{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      std::uint64_t local = 0;
      for (int i = 0; i < ops_per_thread; ++i) {
        const SimTime now =
            clock.fetch_add(step_us, std::memory_order_relaxed) + step_us;
        if (bucket.TryAdmit(now)) ++local;
      }
      admitted.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed_s = ToSeconds(clock.load());
  const double bound = burst + rate * elapsed_s;
  EXPECT_LE(static_cast<double>(admitted.load()), bound + 1e-6)
      << threads << " threads overdrew the bucket";
  // Sanity: with a non-trivial rate the bucket admits *something*.
  EXPECT_GT(admitted.load(), 0u);
  // And the final balance is still inside [0, burst].
  const double tokens = bucket.PeekTokens(clock.load());
  EXPECT_GE(tokens, 0.0);
  EXPECT_LE(tokens, burst);
}

TEST(AtomicBucketConcurrencyTest, ConservationUnderContention) {
  // Offered load far above the rate: most ops reject via the fast path.
  ConservationUnderContention(/*threads=*/8, /*rate=*/50'000.0, /*burst=*/64.0,
                              /*step_us=*/2, /*ops_per_thread=*/40'000);
}

TEST(AtomicBucketConcurrencyTest, ConservationWhenMostlyAdmitting) {
  // Rate above the offered load: nearly every op admits through the CAS.
  ConservationUnderContention(/*threads=*/4, /*rate=*/1e7, /*burst=*/16.0,
                              /*step_us=*/5, /*ops_per_thread=*/40'000);
}

TEST(AtomicBucketConcurrencyTest, ReconfigureWhileAdmittingStress) {
  AtomicTokenBucket bucket(1000.0, 32.0);
  std::atomic<SimTime> clock{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> admitted{0};

  constexpr int kWorkers = 4;
  constexpr double kMaxRate = 5000.0;
  constexpr double kMaxBurst = 64.0;
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&]() {
      std::uint64_t local = 0;
      for (int i = 0; i < 60'000; ++i) {
        const SimTime now = clock.fetch_add(2, std::memory_order_relaxed) + 2;
        if (bucket.TryAdmit(now)) ++local;
      }
      admitted.fetch_add(local, std::memory_order_relaxed);
    });
  }
  // Control thread: a reconfiguration storm of rate updates and full resets.
  std::uint64_t resets = 0;
  {
    Rng rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      if (rng.Bernoulli(0.25)) {
        bucket.Configure(rng.Uniform(0.0, kMaxRate), rng.Uniform(1.0, kMaxBurst));
        ++resets;
      } else {
        bucket.SetRate(rng.Uniform(0.0, kMaxRate));
      }
      // Stop once the clock says the workers executed all their ops.
      if (clock.load(std::memory_order_relaxed) >= 2 * 60'000 * kWorkers) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
  }
  for (auto& w : workers) w.join();
  // Every Configure can refill up to the max burst, so the conservation
  // bound gains one burst per reset — still linear, never unbounded.
  const double elapsed_s = ToSeconds(clock.load());
  const double bound =
      kMaxBurst * static_cast<double>(resets + 1) + kMaxRate * elapsed_s;
  EXPECT_LE(static_cast<double>(admitted.load()), bound + 1e-6);
  const double tokens = bucket.PeekTokens(clock.load());
  EXPECT_GE(tokens, 0.0);
  EXPECT_LE(tokens, bucket.burst());
}

// --- Admitter disciplines ----------------------------------------------------

TEST(AdmitterTest, PriorityThresholdAdmitsWithinThreshold) {
  PriorityThresholdAdmitter admitter(5);
  AdmitRequest req;
  req.priority = 5;
  EXPECT_TRUE(admitter.TryAdmit(req));
  req.priority = 6;
  EXPECT_FALSE(admitter.TryAdmit(req));
  admitter.Configure(/*rate=*/7.0, 0.0);  // threshold via the generic knob
  EXPECT_TRUE(admitter.TryAdmit(req));
  EXPECT_STREQ(admitter.kind(), "priority_threshold");
}

TEST(AdmitterTest, CreditPoolNeverOvercommits) {
  CreditAdmitter admitter(/*credits=*/3.0, /*cap=*/8.0);
  AdmitRequest req;
  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += admitter.TryAdmit(req) ? 1 : 0;
  EXPECT_EQ(admitted, 3);
  admitter.Grant(100.0);  // clamped to the cap
  EXPECT_EQ(admitter.credits(), 8.0);
  admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += admitter.TryAdmit(req) ? 1 : 0;
  EXPECT_EQ(admitted, 8);
  EXPECT_STREQ(admitter.kind(), "credit");
}

TEST(AdmitterTest, CreditPoolConservationUnderThreads) {
  CreditAdmitter admitter(/*credits=*/0.0, /*cap=*/1e9);
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&]() {
      AdmitRequest req;
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (admitter.TryAdmit(req)) ++local;
      }
      admitted.fetch_add(local, std::memory_order_relaxed);
    });
  }
  constexpr int kGrants = 2000;
  for (int i = 0; i < kGrants; ++i) admitter.Grant(5.0);
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  // Total admits can never exceed total credits granted.
  EXPECT_LE(admitted.load(), static_cast<std::uint64_t>(kGrants) * 5u);
}

// --- AdmissionPlane ----------------------------------------------------------

TEST(AdmissionPlaneTest, RegisterConfigureFindAdmit) {
  AdmissionPlane plane;
  const int cart = plane.Register(
      "cart", "AddItem", std::make_shared<TokenBucketAdmitter>(100.0, 10.0));
  const int checkout = plane.Register(
      "checkout", "Place", std::make_shared<TokenBucketAdmitter>(50.0, 5.0));
  EXPECT_EQ(plane.FindSlot("cart", "AddItem"), cart);
  EXPECT_EQ(plane.FindSlot("checkout", "Place"), checkout);
  EXPECT_EQ(plane.FindSlot("cart", "Missing"), -1);

  AdmitRequest req;
  req.now = 0;
  EXPECT_TRUE(plane.TryAdmit(cart, req));   // bucket starts full
  EXPECT_TRUE(plane.TryAdmit(9999, req));   // unknown slot fails open
  EXPECT_TRUE(plane.TryAdmit(-1, req));

  // Configure applies + publishes; an identical republish is coalesced.
  EXPECT_EQ(plane.Configure(cart, 200.0, 20.0), ConfigureResult::kApplied);
  EXPECT_EQ(plane.Configure(cart, 200.0, 20.0), ConfigureResult::kCoalesced);
  EXPECT_EQ(plane.Configure(cart, 200.0, 21.0), ConfigureResult::kApplied);
  EXPECT_EQ(plane.Configure(12345, 1.0, 1.0), ConfigureResult::kInvalidSlot);
  const PlaneStats stats = plane.Stats();
  EXPECT_EQ(stats.reconfigs_applied, 2u);
  EXPECT_EQ(stats.reconfigs_coalesced, 1u);
}

TEST(AdmissionPlaneTest, CoalescedRepublishStillResetsTheBucket) {
  AdmissionPlane plane;
  auto admitter = std::make_shared<TokenBucketAdmitter>(1.0, 1.0);
  const int slot = plane.Register("svc", "m", admitter);
  ASSERT_EQ(plane.Configure(slot, 0.0, 4.0), ConfigureResult::kApplied);
  AdmitRequest req;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(plane.TryAdmit(slot, req));
  EXPECT_FALSE(plane.TryAdmit(slot, req));  // drained, zero rate
  const std::uint64_t published = plane.Stats().snapshots_published;
  // Same-value republish: the bucket refills (historical per-SetRate reset
  // semantics) but no new snapshot is built.
  ASSERT_EQ(plane.Configure(slot, 0.0, 4.0), ConfigureResult::kCoalesced);
  EXPECT_EQ(plane.Stats().snapshots_published, published);
  EXPECT_TRUE(plane.TryAdmit(slot, req));
}

TEST(AdmissionPlaneTest, RemovedSlotFailsOpenAndVersionAdvances) {
  AdmissionPlane plane;
  const int slot = plane.Register(
      "svc", "m", std::make_shared<TokenBucketAdmitter>(0.0, 1.0));
  AdmitRequest req;
  EXPECT_TRUE(plane.TryAdmit(slot, req));   // the single token
  EXPECT_FALSE(plane.TryAdmit(slot, req));  // drained: rejects
  const std::uint64_t v = plane.version();
  plane.Remove(slot);
  EXPECT_GT(plane.version(), v);
  EXPECT_TRUE(plane.TryAdmit(slot, req));  // removed: fails open
  EXPECT_EQ(plane.Configure(slot, 1.0, 1.0), ConfigureResult::kInvalidSlot);
  plane.Remove(slot);  // idempotent
}

TEST(AdmissionPlaneTest, CachedGateTracksRepublishes) {
  AdmissionPlane plane;
  const int slot = plane.Register(
      "svc", "m", std::make_shared<TokenBucketAdmitter>(0.0, 2.0));
  CachedGate gate(&plane);
  AdmitRequest req;
  EXPECT_TRUE(gate.TryAdmit(slot, req));
  EXPECT_TRUE(gate.TryAdmit(slot, req));
  EXPECT_FALSE(gate.TryAdmit(slot, req));  // drained
  // First Configure after Register is always an applied change (the plane
  // has no shadow values yet); the identical republish coalesces.
  ASSERT_EQ(plane.Configure(slot, 0.0, 2.0), ConfigureResult::kApplied);
  EXPECT_TRUE(gate.TryAdmit(slot, req));  // reset applied, gate refreshed
  EXPECT_TRUE(gate.TryAdmit(slot, req));
  EXPECT_FALSE(gate.TryAdmit(slot, req));  // drained again
  ASSERT_EQ(plane.Configure(slot, 0.0, 2.0), ConfigureResult::kCoalesced);
  EXPECT_TRUE(gate.TryAdmit(slot, req));  // in-place reset, no republish
  plane.Remove(slot);
  EXPECT_TRUE(gate.TryAdmit(slot, req));  // gate refreshed: fails open
  // A default-constructed gate (no plane) always fails open.
  CachedGate detached;
  EXPECT_TRUE(detached.TryAdmit(0, req));
}

TEST(AdmissionPlaneTest, SnapshotPinsRemovedAdmitters) {
  AdmissionPlane plane;
  auto admitter = std::make_shared<TokenBucketAdmitter>(1000.0, 8.0);
  std::weak_ptr<TokenBucketAdmitter> weak = admitter;
  const int slot = plane.Register("svc", "m", std::move(admitter));
  auto snapshot = plane.Snapshot();
  plane.Remove(slot);
  // The registry dropped it, but the pinned snapshot keeps it alive...
  ASSERT_FALSE(weak.expired());
  AdmitRequest req;
  req.now = Seconds(1);
  EXPECT_TRUE(snapshot->slots[static_cast<std::size_t>(slot)]->TryAdmit(req));
  // ...even after the caller's pin is gone, the RCU ring retains the last
  // few published States (that retention is what lets Publish never wait
  // for readers), so the admitter is freed only once later publishes
  // rotate the old State out of the ring.
  snapshot.reset();
  for (int i = 0; i < 8; ++i) {
    plane.Register("svc", std::string("fresh").append(std::to_string(i)),
                   std::make_shared<TokenBucketAdmitter>(1.0, 1.0));
  }
  EXPECT_TRUE(weak.expired());
}

TEST(AdmissionPlaneTest, ReconfigureWhileAdmittingAcrossThreads) {
  AdmissionPlane plane;
  constexpr int kSlots = 4;
  // Slot-id handoff between the control thread (which re-registers) and the
  // admit threads is itself concurrent, like a real gateway's routing table.
  std::array<std::atomic<int>, kSlots> slots;
  for (int i = 0; i < kSlots; ++i) {
    slots[static_cast<std::size_t>(i)].store(
        plane.Register("svc", std::string("m").append(std::to_string(i)),
                       std::make_shared<TokenBucketAdmitter>(1000.0, 16.0)),
        std::memory_order_relaxed);
  }
  std::atomic<bool> stop{false};
  std::atomic<SimTime> clock{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t]() {
      CachedGate gate(&plane);
      AdmitRequest req;
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        req.now = clock.fetch_add(1, std::memory_order_relaxed);
        gate.TryAdmit(slots[static_cast<std::size_t>((t + ops) % kSlots)].load(
                          std::memory_order_relaxed),
                      req);
        ++ops;
      }
    });
  }
  // Control thread: republish, remove and re-register while admits fly.
  Rng rng(4242);
  for (int round = 0; round < 400; ++round) {
    const int i = static_cast<int>(rng.UniformInt(0, kSlots - 1));
    if (rng.Bernoulli(0.1)) {
      plane.Remove(slots[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed));
      slots[static_cast<std::size_t>(i)].store(
          plane.Register(
              "svc", std::string("m").append(std::to_string(i)),
              std::make_shared<TokenBucketAdmitter>(rng.Uniform(10.0, 5000.0),
                                                    16.0)),
          std::memory_order_relaxed);
    } else {
      plane.Configure(slots[static_cast<std::size_t>(i)].load(
                          std::memory_order_relaxed),
                      rng.Uniform(10.0, 5000.0), rng.Uniform(1.0, 32.0));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const PlaneStats stats = plane.Stats();
  EXPECT_GT(stats.reconfigs_applied, 0u);
  EXPECT_GT(stats.snapshots_published, 0u);
}

// --- Hot-path hygiene --------------------------------------------------------

TEST(AdmitHotPathTest, SteadyStateAdmitDoesNotAllocate) {
  AdmissionPlane plane;
  const int slot = plane.Register(
      "svc", "m", std::make_shared<TokenBucketAdmitter>(1e6, 1e5));
  CachedGate gate(&plane);
  AdmitRequest req;
  req.now = 0;
  (void)gate.TryAdmit(slot, req);  // warm the gate's snapshot cache
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t admitted = 0;
  for (int i = 0; i < 200'000; ++i) {
    req.now += 10;
    admitted += gate.TryAdmit(slot, req) ? 1 : 0;
  }
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "the admit fast path allocated";
  EXPECT_GT(admitted, 0u);
}

TEST(AdmitHotPathTest, RawBucketAdmitDoesNotAllocate) {
  AtomicTokenBucket bucket(1e6, 1e5);
  SimTime now = 0;
  (void)bucket.TryAdmit(now);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 200'000; ++i) {
    now += 10;
    (void)bucket.TryAdmit(now);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
}  // namespace topfull::admit

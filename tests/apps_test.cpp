// Tests for the three benchmark applications: topology counts match the
// paper, the designed bottlenecks are where they should be, and the demo
// generator is deterministic.
#include <gtest/gtest.h>

#include <set>

#include "apps/alibaba_demo.hpp"
#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"

namespace topfull::apps {
namespace {

TEST(BoutiqueTest, ElevenServicesFiveApis) {
  auto app = MakeOnlineBoutique({});
  EXPECT_EQ(app->NumServices(), 11);  // paper: Online Boutique has 11
  EXPECT_EQ(app->NumApis(), 5);
  EXPECT_EQ(app->FindApi("postcheckout"), kPostCheckout);
  EXPECT_EQ(app->FindApi("getproduct"), kGetProduct);
  EXPECT_EQ(app->FindApi("emptycart"), kEmptyCart);
}

TEST(BoutiqueTest, ExecutionPathsMatchFig3) {
  auto app = MakeOnlineBoutique({});
  const auto& checkout_api = app->api(kPostCheckout);
  EXPECT_TRUE(checkout_api.Uses(app->FindService("checkout")));
  EXPECT_TRUE(checkout_api.Uses(app->FindService("productcatalog")));
  EXPECT_TRUE(checkout_api.Uses(app->FindService("payment")));
  EXPECT_FALSE(checkout_api.Uses(app->FindService("recommendation")));
  const auto& product_api = app->api(kGetProduct);
  EXPECT_TRUE(product_api.Uses(app->FindService("recommendation")));
  EXPECT_TRUE(product_api.Uses(app->FindService("productcatalog")));
  EXPECT_FALSE(product_api.Uses(app->FindService("checkout")));
}

TEST(BoutiqueTest, RecommendationAndCheckoutAreSmallest) {
  // The designed bottlenecks of the Fig. 3 overload scenario.
  auto app = MakeOnlineBoutique({});
  const double rec = app->service(app->FindService("recommendation")).CapacityRps();
  const double checkout = app->service(app->FindService("checkout")).CapacityRps();
  for (int s = 0; s < app->NumServices(); ++s) {
    const double capacity = app->service(s).CapacityRps();
    if (app->service(s).name() == "recommendation" ||
        app->service(s).name() == "checkout") {
      continue;
    }
    EXPECT_GT(capacity, rec);
    EXPECT_GT(capacity, checkout);
  }
}

TEST(BoutiqueTest, DistinctPrioritiesOption) {
  BoutiqueOptions options;
  options.distinct_priorities = true;
  auto app = MakeOnlineBoutique(options);
  EXPECT_LT(app->api(kPostCheckout).business_priority(),
            app->api(kGetProduct).business_priority());
  EXPECT_LT(app->api(kGetProduct).business_priority(),
            app->api(kPostCart).business_priority());
  auto flat = MakeOnlineBoutique({});
  EXPECT_EQ(flat->api(kPostCheckout).business_priority(),
            flat->api(kPostCart).business_priority());
}

TEST(BoutiqueTest, CapacityScaleMultipliesPods) {
  BoutiqueOptions options;
  options.capacity_scale = 2.0;
  auto scaled = MakeOnlineBoutique(options);
  auto base = MakeOnlineBoutique({});
  for (int s = 0; s < base->NumServices(); ++s) {
    EXPECT_GE(scaled->service(s).RunningPods(), base->service(s).RunningPods());
  }
}

TEST(BoutiqueTest, ProbeFailuresOnlyWhenEnabled) {
  auto plain = MakeOnlineBoutique({});
  EXPECT_FALSE(plain->service(plain->FindService("recommendation"))
                   .config().probe_failures_enabled);
  BoutiqueOptions options;
  options.probe_failures = true;
  auto probed = MakeOnlineBoutique(options);
  EXPECT_TRUE(probed->service(probed->FindService("recommendation"))
                  .config().probe_failures_enabled);
}

TEST(TrainTicketTest, FortyOneServicesSixApis) {
  auto app = MakeTrainTicket({});
  EXPECT_EQ(app->NumServices(), 41);  // paper: Train Ticket has 41
  EXPECT_EQ(app->NumApis(), 6);
  EXPECT_EQ(app->FindApi("high_speed_ticket"), kHighSpeedTicket);
  EXPECT_EQ(app->FindApi("query_payment"), kQueryPayment);
}

TEST(TrainTicketTest, StationHas35Pods) {
  // Fig. 18 deletes 25 of the 35 ts-station pods.
  auto app = MakeTrainTicket({});
  EXPECT_EQ(app->service(app->FindService("ts-station")).RunningPods(), 35);
}

TEST(TrainTicketTest, TicketQueriesShareBasicChain) {
  auto app = MakeTrainTicket({});
  const sim::ServiceId basic = app->FindService("ts-basic");
  const sim::ServiceId station = app->FindService("ts-station");
  EXPECT_TRUE(app->api(kHighSpeedTicket).Uses(basic));
  EXPECT_TRUE(app->api(kNormalSpeedTicket).Uses(basic));
  EXPECT_TRUE(app->api(kQueryOrder).Uses(station));
  // The two ticket queries ride different travel services (independent
  // clusters under surge).
  EXPECT_TRUE(app->api(kHighSpeedTicket).Uses(app->FindService("ts-travel")));
  EXPECT_FALSE(app->api(kHighSpeedTicket).Uses(app->FindService("ts-travel2")));
  EXPECT_TRUE(app->api(kNormalSpeedTicket).Uses(app->FindService("ts-travel2")));
}

TEST(AlibabaDemoTest, PaperShapeCounts) {
  const AlibabaDemo demo = MakeAlibabaDemo({});
  EXPECT_EQ(demo.app->NumServices(), 127);  // paper: 127 microservices
  EXPECT_EQ(demo.app->NumApis(), 25);       // paper: 25 APIs
  EXPECT_EQ(demo.overloadable.size(), 13u);  // paper: 13 overloadable
  int paths = 0;
  int branching = 0;
  int max_branches = 0;
  for (sim::ApiId a = 0; a < demo.app->NumApis(); ++a) {
    const int n = static_cast<int>(demo.app->api(a).paths().size());
    paths += n;
    branching += n > 1 ? 1 : 0;
    max_branches = std::max(max_branches, n);
  }
  EXPECT_EQ(paths, 43);        // paper: 43 execution paths in total
  EXPECT_EQ(branching, 8);     // paper: 8 APIs have branching paths
  EXPECT_EQ(max_branches, 6);  // paper: up to 6 paths
}

TEST(AlibabaDemoTest, OverloadableServicesHaveSmallCapacity) {
  const AlibabaDemo demo = MakeAlibabaDemo({});
  std::set<sim::ServiceId> hot(demo.overloadable.begin(), demo.overloadable.end());
  for (const sim::ServiceId s : demo.overloadable) {
    EXPECT_LT(demo.app->service(s).CapacityRps(), 600.0);
  }
  double cold_min = 1e18;
  for (int s = 0; s < demo.app->NumServices(); ++s) {
    if (hot.count(s) == 0) {
      cold_min = std::min(cold_min, demo.app->service(s).CapacityRps());
    }
  }
  EXPECT_GT(cold_min, 2000.0);
}

TEST(AlibabaDemoTest, EveryPathTouchesAnOverloadableService) {
  const AlibabaDemo demo = MakeAlibabaDemo({});
  std::set<sim::ServiceId> hot(demo.overloadable.begin(), demo.overloadable.end());
  for (sim::ApiId a = 0; a < demo.app->NumApis(); ++a) {
    for (const auto& path : demo.app->api(a).paths()) {
      bool touches = false;
      for (const sim::ServiceId s : path.services) touches = touches || hot.count(s) > 0;
      EXPECT_TRUE(touches) << "api " << a;
    }
  }
}

TEST(AlibabaDemoTest, DeterministicForSameSeed) {
  const AlibabaDemo a = MakeAlibabaDemo({});
  const AlibabaDemo b = MakeAlibabaDemo({});
  ASSERT_EQ(a.app->NumApis(), b.app->NumApis());
  for (sim::ApiId i = 0; i < a.app->NumApis(); ++i) {
    EXPECT_EQ(a.app->api(i).involved_services(), b.app->api(i).involved_services());
  }
  EXPECT_EQ(a.overloadable, b.overloadable);
}

}  // namespace
}  // namespace topfull::apps

// Unit tests for the cluster (VM pool) model and the HPA.
#include <gtest/gtest.h>

#include "autoscale/cluster.hpp"
#include "autoscale/hpa.hpp"
#include "workload/generators.hpp"

namespace topfull::autoscale {
namespace {

TEST(ClusterTest, ReserveWithinCapacity) {
  des::Simulation sim;
  ClusterConfig config;
  config.vcpus_per_vm = 10;
  config.initial_vms = 1;
  Cluster cluster(&sim, config);
  EXPECT_TRUE(cluster.Reserve(6));
  EXPECT_TRUE(cluster.Reserve(4));
  EXPECT_FALSE(cluster.Reserve(0.5));
  cluster.Release(4);
  EXPECT_TRUE(cluster.Reserve(3));
  EXPECT_DOUBLE_EQ(cluster.UsedVcpus(), 9.0);
}

TEST(ClusterTest, VmBootTakesStartupTime) {
  des::Simulation sim;
  ClusterConfig config;
  config.vcpus_per_vm = 10;
  config.initial_vms = 1;
  config.max_vms = 2;
  config.vm_startup = Seconds(40);
  Cluster cluster(&sim, config);
  EXPECT_TRUE(cluster.Reserve(10));
  EXPECT_FALSE(cluster.Reserve(1));
  EXPECT_TRUE(cluster.RequestVm());
  EXPECT_EQ(cluster.PendingVms(), 1);
  sim.RunUntil(Seconds(39));
  EXPECT_FALSE(cluster.Reserve(1));  // still booting
  sim.RunUntil(Seconds(41));
  EXPECT_EQ(cluster.ReadyVms(), 2);
  EXPECT_TRUE(cluster.Reserve(1));
}

TEST(ClusterTest, RefusesBeyondMaxVms) {
  des::Simulation sim;
  ClusterConfig config;
  config.initial_vms = 1;
  config.max_vms = 2;
  Cluster cluster(&sim, config);
  EXPECT_TRUE(cluster.RequestVm());
  EXPECT_FALSE(cluster.RequestVm());  // 1 ready + 1 pending = max
}

struct HpaFixture {
  std::unique_ptr<sim::Application> app;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<HorizontalPodAutoscaler> hpa;
  std::unique_ptr<workload::TrafficDriver> traffic;

  explicit HpaFixture(double rate_rps, HpaConfig hpa_config = {},
                      ClusterConfig cluster_config = {}) {
    app = std::make_unique<sim::Application>("hpa-test", 5);
    sim::ServiceConfig svc;
    svc.name = "svc";
    svc.threads = 4;
    svc.mean_service_ms = 10.0;  // 400 rps per pod
    svc.initial_pods = 1;
    app->AddService(svc);
    sim::ApiSpec api("api", 1);
    api.AddPath(sim::ExecutionPath{sim::Chain({0}), 1.0, {}});
    app->AddApi(std::move(api));
    app->Finalize();
    cluster = std::make_unique<Cluster>(&app->sim(), cluster_config);
    hpa = std::make_unique<HorizontalPodAutoscaler>(app.get(), cluster.get(),
                                                    hpa_config);
    hpa->Start();
    traffic = std::make_unique<workload::TrafficDriver>(app.get());
    traffic->AddOpenLoop(0, workload::Schedule::Constant(rate_rps));
  }
};

TEST(HpaTest, ScalesUpUnderLoad) {
  HpaConfig config;
  config.pod_startup = Seconds(5);
  HpaFixture fx(/*rate_rps=*/700.0, config);  // ~1.75x one pod's capacity
  fx.app->RunFor(Seconds(120));
  EXPECT_GE(fx.app->service(0).RunningPods(), 2);
  // Reserved vCPUs track the scale-up.
  EXPECT_GE(fx.hpa->ReservedVcpus(), 2.0);
}

TEST(HpaTest, StableWhenNearTarget) {
  HpaConfig config;
  // One pod at ~60% utilization == target: no scaling.
  HpaFixture fx(/*rate_rps=*/240.0, config);
  fx.app->RunFor(Seconds(120));
  EXPECT_EQ(fx.app->service(0).TotalPods(), 1);
}

TEST(HpaTest, ScaleDownNeedsStability) {
  HpaConfig config;
  config.scale_down_stable_syncs = 4;
  config.sync_period = Seconds(10);
  // Load vanishes at t=120 s via the schedule (generators stay alive).
  HpaFixture fx(/*rate_rps=*/0.0, config);
  fx.traffic->AddOpenLoop(0, workload::Schedule::Constant(700).Then(Seconds(120), 1));
  fx.app->RunFor(Seconds(120));
  const int peak = fx.app->service(0).TotalPods();
  EXPECT_GE(peak, 2);
  // Within the stabilisation window nothing shrinks yet.
  fx.app->RunFor(Seconds(25));
  EXPECT_EQ(fx.app->service(0).TotalPods(), peak);
  // Well past it, the HPA scales down.
  fx.app->RunFor(Seconds(180));
  EXPECT_LT(fx.app->service(0).TotalPods(), peak);
}

TEST(HpaTest, VcpuExhaustionDelaysScaleUp) {
  HpaConfig hpa_config;
  hpa_config.pod_startup = Seconds(2);
  hpa_config.sync_period = Seconds(5);
  ClusterConfig cluster_config;
  cluster_config.vcpus_per_vm = 2;  // tiny VMs: 1 pod already uses 1 vCPU
  cluster_config.initial_vms = 1;
  cluster_config.max_vms = 3;
  cluster_config.vm_startup = Seconds(50);
  HpaFixture fx(/*rate_rps=*/1600.0, hpa_config, cluster_config);
  fx.app->RunFor(Seconds(40));
  // Only one extra pod fits before the vCPU pool runs dry.
  EXPECT_LE(fx.app->service(0).TotalPods(), 2);
  fx.app->RunFor(Seconds(120));
  // After VM boot, scaling resumes.
  EXPECT_GE(fx.app->service(0).TotalPods(), 3);
  EXPECT_GE(fx.cluster->ReadyVms(), 2);
}

TEST(HpaTest, ExcludedServiceIsNotScaled) {
  HpaConfig config;
  HpaFixture fx(/*rate_rps=*/900.0, config);
  fx.hpa->Exclude(0);
  fx.app->RunFor(Seconds(120));
  EXPECT_EQ(fx.app->service(0).TotalPods(), 1);
}

TEST(HpaTest, RespectsMaxPods) {
  HpaConfig config;
  config.pod_startup = Seconds(1);
  config.sync_period = Seconds(5);
  HpaFixture fx(/*rate_rps=*/4000.0, config);
  fx.hpa->SetLimits(0, 1, 3);
  fx.app->RunFor(Seconds(120));
  EXPECT_LE(fx.app->service(0).TotalPods(), 3);
}

}  // namespace
}  // namespace topfull::autoscale

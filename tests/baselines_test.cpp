// Unit tests for the DAGOR and Breakwater baseline implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/breakwater.hpp"
#include "common/rng.hpp"
#include "baselines/dagor.hpp"
#include "baselines/wisp.hpp"
#include "workload/generators.hpp"

namespace topfull::baselines {
namespace {

sim::ServiceConfig Svc(const char* name, double mean_ms, int threads, int pods) {
  sim::ServiceConfig config;
  config.name = name;
  config.mean_service_ms = mean_ms;
  config.service_sigma = 0.0;
  config.threads = threads;
  config.initial_pods = pods;
  return config;
}

std::unique_ptr<sim::Application> SmallApp(int priority0 = 1, int priority1 = 2) {
  auto app = std::make_unique<sim::Application>("bl", 31);
  const sim::ServiceId a = app->AddService(Svc("A", 5.0, 4, 1));  // 800 rps
  sim::ApiSpec api0("hi", priority0);
  api0.AddPath(sim::ExecutionPath{sim::Chain({a}), 1.0, {}});
  app->AddApi(std::move(api0));
  sim::ApiSpec api1("lo", priority1);
  api1.AddPath(sim::ExecutionPath{sim::Chain({a}), 1.0, {}});
  app->AddApi(std::move(api1));
  app->Finalize();
  return app;
}

// --- DAGOR -------------------------------------------------------------------

TEST(DagorTest, FreshPodsAdmitEverything) {
  auto app = SmallApp();
  DagorAdmission dagor(app.get());
  sim::RequestInfo info;
  info.business_priority = 7;
  info.user_priority = 127;
  EXPECT_TRUE(dagor.Admit(info, 0, 0, 0));
}

TEST(DagorTest, ThresholdOrdersByCompoundPriority) {
  auto app = SmallApp();
  DagorAdmission dagor(app.get());
  // Manually run enough traffic through one pod so Update() sets a
  // threshold, then verify ordering semantics around it.
  sim::RequestInfo info;
  for (int i = 0; i < 1000; ++i) {
    info.business_priority = i % 4;
    info.user_priority = i % 128;
    dagor.Admit(info, 0, 0, 0);
  }
  // Saturate the pod so it reports overload (head-of-line wait).
  for (int i = 0; i < 50; ++i) {
    app->service(0).pod(0).Enqueue(Millis(100), [](bool) {});
  }
  app->sim().RunUntil(Millis(200));  // HoL wait grows past 20 ms
  dagor.Update();
  const int threshold = dagor.Threshold(0, 0);
  EXPECT_LT(threshold, 4 * 128 - 1);  // shed something
  sim::RequestInfo high;  // best possible priority
  high.business_priority = 0;
  high.user_priority = 0;
  EXPECT_TRUE(dagor.Admit(high, 0, 0, Millis(300)));
  sim::RequestInfo low;
  low.business_priority = 3;
  low.user_priority = 127;
  EXPECT_EQ(dagor.Admit(low, 0, 0, Millis(300)), 3 * 128 + 127 <= threshold);
}

TEST(DagorTest, IdlePodReopensFully) {
  auto app = SmallApp();
  DagorAdmission dagor(app.get());
  sim::RequestInfo info;
  dagor.Admit(info, 0, 0, 0);  // create state
  dagor.Update();              // pod idle: threshold -> max
  sim::RequestInfo low;
  low.business_priority = 7;
  low.user_priority = 127;
  EXPECT_TRUE(dagor.Admit(low, 0, 0, 0));
}

TEST(DagorTest, EndToEndShedsUnderOverloadAndRecovers) {
  auto app = SmallApp();
  DagorAdmission dagor(app.get());
  dagor.Install();
  workload::TrafficDriver traffic(app.get());
  // 3x capacity, then calm.
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200).Then(Seconds(40), 200));
  traffic.AddOpenLoop(1, workload::Schedule::Constant(1200).Then(Seconds(40), 200));
  app->RunFor(Seconds(40));
  const auto& totals = app->metrics().Totals();
  EXPECT_GT(totals[0].rejected_service + totals[1].rejected_service, 10000u);
  // Goodput stays near capacity under control.
  EXPECT_GT(app->metrics().AvgTotalGoodput(20, 40), 500.0);
  app->RunFor(Seconds(40));
  // After the overload ends, (almost) everything is admitted again.
  EXPECT_NEAR(app->metrics().AvgTotalGoodput(60, 80), 400.0, 40.0);
}

TEST(DagorTest, BusinessPriorityProtectsHighPriorityApi) {
  auto app = SmallApp(/*priority0=*/1, /*priority1=*/5);
  DagorAdmission dagor(app.get());
  dagor.Install();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(600));
  traffic.AddOpenLoop(1, workload::Schedule::Constant(600));
  app->RunFor(Seconds(60));
  const double hi = app->metrics().AvgGoodput(0, 30, 60);
  const double lo = app->metrics().AvgGoodput(1, 30, 60);
  EXPECT_GT(hi, 450.0);  // ~all of the high-priority API's demand
  EXPECT_LT(lo, hi / 2);  // the low-priority API is shed
}

// --- Breakwater ----------------------------------------------------------------

TEST(BreakwaterTest, CreditRateGrowsWhenIdle) {
  auto app = SmallApp();
  BreakwaterConfig config;
  config.initial_rate = 100;
  config.additive_rps = 50;
  BreakwaterAdmission bw(app.get(), config);
  bw.Admit(sim::RequestInfo{}, 0, 0, 0);  // create state
  const double before = bw.CreditRate(0, 0);
  bw.Update();
  bw.Update();
  EXPECT_DOUBLE_EQ(bw.CreditRate(0, 0), before + 100.0);
}

TEST(BreakwaterTest, CreditRateDropsUnderQueueing) {
  auto app = SmallApp();
  BreakwaterConfig config;
  config.initial_rate = 400;
  BreakwaterAdmission bw(app.get(), config);
  bw.Admit(sim::RequestInfo{}, 0, 0, 0);
  // Jam the pod: one long job in service, one queued forever.
  for (int i = 0; i < 10; ++i) {
    app->service(0).pod(0).Enqueue(Seconds(2), [](bool) {});
  }
  app->sim().RunUntil(Millis(500));  // HoL wait 0.5 s >> 20 ms target
  bw.Update();
  EXPECT_LT(bw.CreditRate(0, 0), 400.0);
}

TEST(BreakwaterTest, AqmShedsOnInstantaneousDelay) {
  auto app = SmallApp();
  BreakwaterConfig config;
  config.target_delay_s = 0.02;
  config.aqm_factor = 2.0;
  BreakwaterAdmission bw(app.get(), config);
  for (int i = 0; i < 10; ++i) {
    app->service(0).pod(0).Enqueue(Seconds(2), [](bool) {});
  }
  app->sim().RunUntil(Millis(200));  // HoL 0.2 s > 0.04 s AQM threshold
  EXPECT_FALSE(bw.Admit(sim::RequestInfo{}, 0, 0, app->sim().Now()));
}

TEST(BreakwaterTest, EndToEndControlsOverload) {
  auto app = SmallApp();
  BreakwaterAdmission bw(app.get());
  bw.Install();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(2400));
  app->RunFor(Seconds(60));
  // Without control this open-loop 3x overload keeps every completion past
  // the SLO; Breakwater holds some goodput.
  EXPECT_GT(app->metrics().AvgGoodput(0, 30, 60), 300.0);
  const auto& totals = app->metrics().Totals();
  EXPECT_GT(totals[0].rejected_service, 10000u);
}

TEST(BreakwaterTest, MultiTierDropsCompound) {
  // Two-tier chain, both tiers shedding randomly: end-to-end goodput falls
  // short of the single bottleneck's capacity (the (1-p)^2 effect §6.1).
  auto app = std::make_unique<sim::Application>("bw2", 37);
  const sim::ServiceId a = app->AddService(Svc("A", 5.0, 4, 1));  // 800 rps
  const sim::ServiceId b = app->AddService(Svc("B", 5.0, 4, 1));  // 800 rps
  sim::ApiSpec api("api", 1);
  api.AddPath(sim::ExecutionPath{sim::Chain({a, b}), 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  BreakwaterAdmission bw(app.get());
  bw.Install();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(2400));
  app->RunFor(Seconds(60));
  const double two_tier = app->metrics().AvgGoodput(0, 30, 60);

  // Reference: the same overload through a single tier.
  auto ref = std::make_unique<sim::Application>("bw1", 37);
  const sim::ServiceId ra = ref->AddService(Svc("A", 5.0, 4, 1));
  sim::ApiSpec ref_api("api", 1);
  ref_api.AddPath(sim::ExecutionPath{sim::Chain({ra}), 1.0, {}});
  ref->AddApi(std::move(ref_api));
  ref->Finalize();
  BreakwaterAdmission ref_bw(ref.get());
  ref_bw.Install();
  workload::TrafficDriver ref_traffic(ref.get());
  ref_traffic.AddOpenLoop(0, workload::Schedule::Constant(2400));
  ref->RunFor(Seconds(60));
  const double one_tier = ref->metrics().AvgGoodput(0, 30, 60);

  EXPECT_LT(two_tier, one_tier);  // uncorrelated drops compound
  EXPECT_GT(two_tier, 100.0);
}

// --- Conformance: DAGOR admission is monotone in compound priority -----------

TEST(DagorTest, AdmissionMonotoneInCompoundPriority) {
  auto app = SmallApp();
  const DagorConfig config;
  DagorAdmission dagor(app.get(), config);
  dagor.Install();
  // 3x overload drives the threshold into the interior of the compound range.
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));
  traffic.AddOpenLoop(1, workload::Schedule::Constant(1200));
  app->RunFor(Seconds(20));
  const int max_compound = config.business_levels * config.user_levels - 1;
  const int threshold = dagor.Threshold(0, 0);
  ASSERT_GT(threshold, 0);
  ASSERT_LT(threshold, max_compound);

  // The admitted set must be exactly the downward-closed prefix of the
  // compound priority order: admit (b, u) <=> b * 128 + u <= threshold. In
  // particular no request may be rejected while a lower-priority (higher
  // compound) one is admitted.
  int last_admitted_compound = -1;
  int first_rejected_compound = max_compound + 1;
  for (int b = 0; b < config.business_levels; ++b) {
    for (int u = 0; u < config.user_levels; ++u) {
      sim::RequestInfo info;
      info.business_priority = b;
      info.user_priority = u;
      const int compound = b * config.user_levels + u;
      const bool admitted = dagor.Admit(info, 0, 0, app->sim().Now());
      EXPECT_EQ(admitted, compound <= threshold) << "compound " << compound;
      if (admitted) last_admitted_compound = std::max(last_admitted_compound, compound);
      if (!admitted) first_rejected_compound = std::min(first_rejected_compound, compound);
    }
  }
  EXPECT_LT(last_admitted_compound, first_rejected_compound);
}

// --- Conformance: Breakwater credit pool bounded below, converges ------------

TEST(BreakwaterTest, CreditRateNeverFallsBelowFloorUnderRandomChurn) {
  // Random jam / drain churn across several seeds: however hard the pod is
  // overloaded, the multiplicative decrease must never drive the credit
  // rate below min_rate (in particular never to zero or negative, which
  // would deadlock the edge forever).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto app = SmallApp();
    BreakwaterConfig config;
    config.initial_rate = 300.0;
    BreakwaterAdmission bw(app.get(), config);
    bw.Admit(sim::RequestInfo{}, 0, 0, 0);  // create pod state
    Rng rng(seed * 10007);
    for (int step = 0; step < 200; ++step) {
      if (rng.Bernoulli(0.5)) {
        const int jobs = static_cast<int>(rng.UniformInt(1, 8));
        for (int j = 0; j < jobs; ++j) {
          app->service(0).pod(0).Enqueue(
              static_cast<SimTime>(rng.UniformInt(Millis(1), Seconds(1))),
              [](bool) {});
        }
      }
      app->sim().RunUntil(app->sim().Now() +
                          static_cast<SimTime>(rng.UniformInt(Millis(1), Millis(200))));
      bw.Update();
      const double rate = bw.CreditRate(0, 0);
      EXPECT_GE(rate, config.min_rate) << "seed " << seed << " step " << step;
      EXPECT_TRUE(std::isfinite(rate));
    }
  }
}

TEST(BreakwaterTest, ConvergesOnStaticWorkload) {
  // Static offered load below pod capacity: after warm-up the admitted
  // throughput must settle at the offered rate (no residual shedding, no
  // oscillation beyond arrival noise).
  auto app = SmallApp();
  BreakwaterAdmission bw(app.get());
  bw.Install();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(600));  // cap 800 rps
  app->RunFor(Seconds(30));
  std::uint64_t late_rejections = 0;
  for (const auto& snap : app->metrics().Timeline()) {
    if (snap.t_end_s <= 20.0) continue;
    const auto& w = snap.apis[0];
    EXPECT_NEAR(static_cast<double>(w.admitted), 600.0, 80.0)
        << "window " << snap.t_end_s;
    late_rejections += w.rejected_service;
  }
  EXPECT_EQ(late_rejections, 0u);
}

// --- WISP --------------------------------------------------------------------

TEST(WispTest, RateGrowsWhenHealthy) {
  auto app = SmallApp();
  WispConfig config;
  config.initial_rate = 100;
  config.additive_rps = 40;
  WispAdmission wisp(app.get(), config);
  wisp.Admit(sim::RequestInfo{}, 0, 0, 0);  // create state
  wisp.Update();
  wisp.Update();
  EXPECT_DOUBLE_EQ(wisp.RateLimit(0, 0), 180.0);
}

TEST(WispTest, LocalQueueingCutsRate) {
  auto app = SmallApp();
  WispConfig config;
  config.initial_rate = 400;
  WispAdmission wisp(app.get(), config);
  wisp.Admit(sim::RequestInfo{}, 0, 0, 0);
  for (int i = 0; i < 10; ++i) {
    app->service(0).pod(0).Enqueue(Seconds(2), [](bool) {});
  }
  app->sim().RunUntil(Millis(500));
  wisp.Update();
  EXPECT_LT(wisp.RateLimit(0, 0), 400.0);
}

TEST(WispTest, DownstreamRejectionsPropagateUpstream) {
  // Two-tier chain; the downstream pod has no credit, so every sub-request
  // forwarded by the upstream is shed there. After an update, the upstream
  // limiter must have tightened even though it is locally idle.
  auto app = std::make_unique<sim::Application>("wisp2", 41);
  const sim::ServiceId a = app->AddService(Svc("A", 5.0, 4, 1));
  const sim::ServiceId b = app->AddService(Svc("B", 5.0, 4, 1));
  sim::ApiSpec api("api", 1);
  api.AddPath(sim::ExecutionPath{sim::Chain({a, b}), 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  WispConfig config;
  config.initial_rate = 1000;
  WispAdmission wisp(app.get(), config);
  wisp.Install();
  // Starve B's limiter so it rejects everything.
  for (int i = 0; i < 3000; ++i) {
    app->sim().ScheduleAt(Millis(i), [&app]() { app->Submit(0); });
  }
  app->RunFor(Seconds(1));
  wisp.Update();
  // B rejected a lot; A's rate must have been pulled down even though A's
  // own queue never built up.
  EXPECT_LT(wisp.RateLimit(a, 0), 1000.0);
}

TEST(WispTest, EndToEndControlsOverload) {
  auto app = SmallApp();
  WispAdmission wisp(app.get());
  wisp.Install();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(2400));
  app->RunFor(Seconds(60));
  EXPECT_GT(app->metrics().AvgGoodput(0, 30, 60), 300.0);
}

}  // namespace
}  // namespace topfull::baselines

// Unit tests for src/common: RNG determinism and distributions, streaming
// stats, percentiles, EWMA, token bucket, union-find, schedules/tables, and
// the allocation-free building blocks (InlineFunction, SlabPool, RingQueue).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/inline_function.hpp"
#include "common/object_pool.hpp"
#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/token_bucket.hpp"
#include "common/union_find.hpp"

namespace topfull {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(Seconds(1), 1'000'000);
  EXPECT_EQ(Millis(1), 1'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(12.0)), 12.0);
  EXPECT_EQ(Seconds(0.001), Millis(1));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(5.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.15);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, LogNormalMeanMatchesFormula) {
  Rng rng(15);
  const double mu = std::log(10.0) - 0.5 * 0.25 * 0.25;
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.LogNormal(mu, 0.25));
  EXPECT_NEAR(stats.mean(), 10.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(42), parent2(42);
  Rng child1 = parent1.Fork("worker");
  Rng child2 = parent2.Fork("worker");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.NextU64(), child2.NextU64());
  Rng other = parent1.Fork("other");
  EXPECT_NE(other.NextU64(), child1.NextU64());
}

TEST(StreamingStatsTest, MeanVarianceMinMax) {
  StreamingStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.count(), 0u);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  std::vector<double> values{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 25.0);
}

TEST(PercentileTest, EmptyReturnsFallback) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0, -1.0), -1.0);
}

TEST(PercentileTest, InPlaceSortsAndMatchesCopyingForm) {
  const std::vector<double> values = {9.0, 1.0, 5.0, 3.0, 7.0};
  std::vector<double> buffer = values;
  EXPECT_DOUBLE_EQ(PercentileInPlace(buffer, 50.0), Percentile(values, 50.0));
  EXPECT_TRUE(std::is_sorted(buffer.begin(), buffer.end()));
  // The sorted buffer can then serve any number of quantile reads.
  EXPECT_DOUBLE_EQ(PercentileSorted(buffer, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(buffer, 100.0), 9.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(buffer, 95.0), Percentile(values, 95.0));
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(PercentileInPlace(empty, 50.0, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(empty, 50.0, -3.0), -3.0);
}

TEST(PercentileTest, SingleSampleForEveryP) {
  // Regression: a one-completion window must report that latency for any
  // quantile, including the p0/p100 extremes and out-of-range p.
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0, -5.0, 250.0}) {
    EXPECT_DOUBLE_EQ(Percentile({7.5}, p), 7.5) << "p=" << p;
  }
}

TEST(PercentileTest, P0AndP100AreMinAndMax) {
  const std::vector<double> values = {4.0, -2.0, 11.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 11.0);
  // Out-of-range p clamps to the extremes instead of indexing out of range.
  EXPECT_DOUBLE_EQ(Percentile(values, -40.0), -2.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 700.0), 11.0);
}

TEST(PercentileTest, NonFinitePReturnsFallback) {
  // Regression: a NaN rank (e.g. computed from a zero-completion window)
  // must yield the fallback, not UB from clamping/casting NaN.
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(Percentile(values, nan, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, inf, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, -inf, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(Percentile({}, nan, -4.0), -4.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(values, nan, -5.0), -5.0);
}

TEST(WindowedSamplesTest, ExpiresOldSamples) {
  WindowedSamples window(Seconds(1));
  window.Add(Millis(100), 1.0);
  window.Add(Millis(600), 2.0);
  window.Add(Millis(1500), 3.0);
  window.Expire(Millis(1500));  // cutoff 500 ms: only the t=100ms sample goes
  EXPECT_EQ(window.Count(), 2u);
  EXPECT_DOUBLE_EQ(window.Mean(), 2.5);
}

TEST(WindowedSamplesTest, PercentileOfLiveWindow) {
  WindowedSamples window(Seconds(10));
  for (int i = 1; i <= 100; ++i) window.Add(Millis(i), static_cast<double>(i));
  EXPECT_NEAR(window.Percentile(95.0), 95.05, 0.5);
}

TEST(EwmaTest, ConvergesTowardsConstant) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.initialized());
  ewma.Add(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
  for (int i = 0; i < 20; ++i) ewma.Add(20.0);
  EXPECT_NEAR(ewma.value(), 20.0, 0.01);
}

TEST(TokenBucketTest, AdmitsUpToBurstInstantly) {
  TokenBucket bucket(100.0, 5.0);
  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += bucket.TryAdmit(0) ? 1 : 0;
  EXPECT_EQ(admitted, 5);
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket bucket(100.0, 5.0);
  for (int i = 0; i < 5; ++i) bucket.TryAdmit(0);
  EXPECT_FALSE(bucket.TryAdmit(0));
  // After 50 ms at 100 rps, ~5 tokens are back.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += bucket.TryAdmit(Millis(50)) ? 1 : 0;
  EXPECT_EQ(admitted, 5);
}

TEST(TokenBucketTest, LongRunAdmissionTracksRate) {
  TokenBucket bucket(250.0, 10.0);
  int admitted = 0;
  for (SimTime t = 0; t < Seconds(10); t += Millis(1)) {
    admitted += bucket.TryAdmit(t) ? 1 : 0;
  }
  EXPECT_NEAR(admitted, 2500, 15);
}

TEST(TokenBucketTest, ZeroRateAdmitsOnlyBurst) {
  TokenBucket bucket(0.0, 3.0);
  int admitted = 0;
  for (SimTime t = 0; t < Seconds(5); t += Millis(10)) {
    admitted += bucket.TryAdmit(t) ? 1 : 0;
  }
  EXPECT_EQ(admitted, 3);
}

TEST(TokenBucketTest, SetRateTakesEffect) {
  TokenBucket bucket(10.0, 1.0);
  bucket.SetRate(1000.0);
  int admitted = 0;
  for (SimTime t = 0; t < Seconds(1); t += Millis(1)) {
    admitted += bucket.TryAdmit(t) ? 1 : 0;
  }
  EXPECT_NEAR(admitted, 1000, 10);
}

TEST(UnionFindTest, BasicUnions) {
  UnionFind dsu(6);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_TRUE(dsu.Union(2, 3));
  EXPECT_FALSE(dsu.Union(1, 0));
  EXPECT_TRUE(dsu.Connected(0, 1));
  EXPECT_FALSE(dsu.Connected(0, 2));
  EXPECT_TRUE(dsu.Union(1, 3));
  EXPECT_TRUE(dsu.Connected(0, 2));
  EXPECT_EQ(dsu.SizeOf(3), 4u);
  EXPECT_EQ(dsu.SizeOf(5), 1u);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table("caption");
  table.SetHeader({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow("b", {2.5}, 1);
  const std::string out = table.Render();
  EXPECT_NE(out.find("caption"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
}

TEST(InlineFunctionTest, InvokesStoredCallable) {
  InlineFunction<int(int), 32> f = [](int x) { return x * 2; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(21), 42);
}

TEST(InlineFunctionTest, EmptyAndNullptrAreFalsy) {
  InlineFunction<void(), 32> f;
  EXPECT_FALSE(static_cast<bool>(f));
  InlineFunction<void(), 32> g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  InlineFunction<void(), 32> f = [&calls]() { ++calls; };
  InlineFunction<void(), 32> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(calls, 1);
  f = std::move(g);  // move-assign back
  EXPECT_FALSE(static_cast<bool>(g));
  f();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunctionTest, CopiesLvalueCallable) {
  int calls = 0;
  auto lambda = [&calls]() { ++calls; };
  InlineFunction<void(), 32> f = lambda;  // lambda itself stays usable
  f();
  lambda();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunctionTest, DestroysNonTrivialCaptureExactlyOnce) {
  // A shared_ptr capture counts destructions via use_count.
  auto token = std::make_shared<int>(7);
  {
    InlineFunction<int(), 32> f = [token]() { return *token; };
    EXPECT_EQ(token.use_count(), 2);
    EXPECT_EQ(f(), 7);
    InlineFunction<int(), 32> g = std::move(f);
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
    EXPECT_EQ(g(), 7);
    g = nullptr;
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunctionTest, MoveOnlyCaptureWorks) {
  auto owned = std::make_unique<int>(5);
  InlineFunction<int(), 32> f = [p = std::move(owned)]() { return *p; };
  EXPECT_EQ(f(), 5);
  InlineFunction<int(), 32> g = std::move(f);
  EXPECT_EQ(g(), 5);
}

TEST(SlabPoolTest, ReusesFreedRecordsLifo) {
  SlabPool<int> pool;
  int* a = pool.Alloc();
  int* b = pool.Alloc();
  EXPECT_EQ(pool.live(), 2u);
  pool.Free(a);
  EXPECT_EQ(pool.live(), 1u);
  int* c = pool.Alloc();
  EXPECT_EQ(c, a);  // LIFO free list hands the hot record back first
  pool.Free(b);
  pool.Free(c);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPoolTest, AddressesStableAcrossGrowth) {
  SlabPool<std::uint64_t> pool;
  std::vector<std::uint64_t*> ptrs;
  for (int i = 0; i < 2000; ++i) {  // spans many slabs
    ptrs.push_back(pool.Alloc());
    *ptrs.back() = static_cast<std::uint64_t>(i);
  }
  EXPECT_GE(pool.capacity(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(*ptrs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  }
  for (auto* p : ptrs) pool.Free(p);
  EXPECT_EQ(pool.live(), 0u);
  // Steady state: capacity stays put, no new slabs.
  const std::size_t cap = pool.capacity();
  for (int i = 0; i < 2000; ++i) ptrs[static_cast<std::size_t>(i)] = pool.Alloc();
  EXPECT_EQ(pool.capacity(), cap);
}

TEST(RingQueueTest, FifoOrderAcrossGrowthAndWraparound) {
  RingQueue<int> q;
  int next_in = 0, next_out = 0;
  // Interleave pushes and pops so head/tail wrap while the buffer grows.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) q.push_back(next_in++);
    for (int i = 0; i < 5 && !q.empty(); ++i) {
      EXPECT_EQ(q.front(), next_out);
      q.pop_front();
      ++next_out;
    }
  }
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_EQ(q.size(), 0u);
}

TEST(RingQueueTest, AtIndexesFromFront) {
  RingQueue<int> q;
  for (int i = 0; i < 20; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q.at(i), static_cast<int>(i) + 6);
  }
}

TEST(RingQueueTest, PopReleasesHeldResources) {
  RingQueue<std::shared_ptr<int>> q;
  auto token = std::make_shared<int>(1);
  q.push_back(token);
  EXPECT_EQ(token.use_count(), 2);
  q.pop_front();  // popped slot must not keep the shared_ptr alive
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace topfull

// Unit tests for the TopFull core: registry, overload detection, clustering
// (Eq. 2), Algorithm 1 semantics, rate controllers, and the end-to-end
// controller behaviour on small deterministic topologies.
#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/controller.hpp"
#include "core/overload.hpp"
#include "core/rate_controller.hpp"
#include "core/registry.hpp"
#include "workload/generators.hpp"

namespace topfull::core {
namespace {

sim::ServiceConfig Svc(const char* name, double mean_ms, int threads, int pods) {
  sim::ServiceConfig config;
  config.name = name;
  config.mean_service_ms = mean_ms;
  config.service_sigma = 0.0;
  config.threads = threads;
  config.initial_pods = pods;
  return config;
}

/// Fig. 1 topology: API0 -> {A, B}; API1 -> {A}. B is the small service.
std::unique_ptr<sim::Application> Fig1App(int priority0 = 1, int priority1 = 1) {
  auto app = std::make_unique<sim::Application>("fig1", 11);
  const sim::ServiceId a = app->AddService(Svc("A", 4.0, 8, 1));   // 2000 rps
  const sim::ServiceId b = app->AddService(Svc("B", 10.0, 4, 1));  // 400 rps
  sim::ApiSpec api0("api0", priority0);
  api0.AddPath(sim::ExecutionPath{sim::Chain({a, b}), 1.0, {}});
  app->AddApi(std::move(api0));
  sim::ApiSpec api1("api1", priority1);
  api1.AddPath(sim::ExecutionPath{sim::Chain({a}), 1.0, {}});
  app->AddApi(std::move(api1));
  app->Finalize();
  return app;
}

TEST(RegistryTest, MembershipFromPaths) {
  auto app = Fig1App();
  ApiRegistry registry(*app);
  EXPECT_EQ(registry.ServicesOf(0), (std::vector<sim::ServiceId>{0, 1}));
  EXPECT_EQ(registry.ServicesOf(1), (std::vector<sim::ServiceId>{0}));
  EXPECT_EQ(registry.ApisOf(0), (std::vector<sim::ApiId>{0, 1}));
  EXPECT_EQ(registry.ApisOf(1), (std::vector<sim::ApiId>{0}));
  EXPECT_EQ(registry.ApiCount(0), 2);
  EXPECT_EQ(registry.ApiCount(1), 1);
  EXPECT_TRUE(registry.Uses(0, 1));
  EXPECT_FALSE(registry.Uses(1, 1));
}

TEST(OverloadDetectTest, UtilAndQueueDelayThresholds) {
  sim::Snapshot snap;
  snap.services.resize(3);
  snap.services[0].cpu_utilization = 0.99;  // overloaded by util
  snap.services[1].cpu_utilization = 0.50;
  snap.services[1].avg_queue_delay_s = 0.5;  // overloaded by queueing delay
  snap.services[2].cpu_utilization = 0.94;   // just under the default 0.95
  OverloadConfig config;
  EXPECT_EQ(DetectOverloaded(snap, config), (std::vector<sim::ServiceId>{0, 1}));
  config.use_queue_delay = false;
  EXPECT_EQ(DetectOverloaded(snap, config), (std::vector<sim::ServiceId>{0}));
}

// --- Clustering (Eq. 2) ------------------------------------------------------

/// Builds a registry for a synthetic membership map (api -> services).
std::unique_ptr<sim::Application> MembershipApp(
    int num_services, const std::vector<std::vector<sim::ServiceId>>& paths) {
  auto app = std::make_unique<sim::Application>("member", 13);
  for (int s = 0; s < num_services; ++s) {
    app->AddService(Svc(("s" + std::to_string(s)).c_str(), 5.0, 4, 1));
  }
  for (std::size_t a = 0; a < paths.size(); ++a) {
    sim::ApiSpec api("api" + std::to_string(a), 1);
    api.AddPath(sim::ExecutionPath{sim::Chain(paths[a]), 1.0, {}});
    app->AddApi(std::move(api));
  }
  app->Finalize();
  return app;
}

TEST(ClusteringTest, DisjointOverloadsFormSeparateClusters) {
  auto app = MembershipApp(4, {{0, 1}, {2, 3}});
  ApiRegistry registry(*app);
  const auto clusters = BuildClusters(registry, {0, 2});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].apis, (std::vector<sim::ApiId>{0}));
  EXPECT_EQ(clusters[1].apis, (std::vector<sim::ApiId>{1}));
}

TEST(ClusteringTest, SharedOverloadMergesApis) {
  auto app = MembershipApp(3, {{0, 1}, {1, 2}});
  ApiRegistry registry(*app);
  const auto clusters = BuildClusters(registry, {1});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].apis, (std::vector<sim::ApiId>{0, 1}));
  EXPECT_EQ(clusters[0].overloaded, (std::vector<sim::ServiceId>{1}));
}

TEST(ClusteringTest, TransitiveMergeThroughBridgingApi) {
  // API0 uses {0}, API1 uses {0, 2}, API2 uses {2}: overloads at 0 and 2
  // merge all three APIs even though API0 and API2 share nothing directly
  // (the paper's API1/API2/API3 example in §4.2).
  auto app = MembershipApp(3, {{0}, {0, 2}, {2}});
  ApiRegistry registry(*app);
  const auto clusters = BuildClusters(registry, {0, 2});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].apis, (std::vector<sim::ApiId>{0, 1, 2}));
  EXPECT_EQ(clusters[0].overloaded, (std::vector<sim::ServiceId>{0, 2}));
}

TEST(ClusteringTest, TargetIsOverloadedServiceWithFewestApis) {
  // Service 0 used by 3 APIs, service 1 by 1 API; both overloaded.
  auto app = MembershipApp(2, {{0}, {0}, {0, 1}});
  ApiRegistry registry(*app);
  const auto clusters = BuildClusters(registry, {0, 1});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].target, 1);
  EXPECT_EQ(clusters[0].candidates, (std::vector<sim::ApiId>{2}));
}

TEST(ClusteringTest, OverloadedServiceWithNoApisIsIgnored) {
  auto app = MembershipApp(3, {{0}});
  ApiRegistry registry(*app);
  const auto clusters = BuildClusters(registry, {2});
  EXPECT_TRUE(clusters.empty());
}

TEST(ClusteringTest, NoOverloadsNoClusters) {
  auto app = MembershipApp(2, {{0}, {1}});
  ApiRegistry registry(*app);
  EXPECT_TRUE(BuildClusters(ApiRegistry(*app), {}).empty());
}

// --- Rate controllers --------------------------------------------------------

TEST(MimdControllerTest, ThresholdSwitch) {
  MimdRateController mimd(0.05, 0.01);
  ControlState good{100, 100, 0.5, 1.0};
  ControlState bad{100, 100, 1.5, 1.0};
  EXPECT_DOUBLE_EQ(mimd.DecideStep(good), 0.01);
  EXPECT_DOUBLE_EQ(mimd.DecideStep(bad), -0.05);
}

TEST(AimdControllerTest, AdditiveUpMultiplicativeDown) {
  AimdConfig config;
  config.additive_rps = 50;
  config.beta = 0.4;
  config.target_fraction = 0.8;
  AimdRateController aimd(config);
  // Below target: +50 rps expressed multiplicatively.
  ControlState calm{400, 500, 0.1, 1.0};
  EXPECT_NEAR(aimd.DecideStep(calm), 0.1, 1e-9);
  // Above target: proportional decrease.
  ControlState hot{100, 500, 1.6, 1.0};  // overload = (1.6-0.8)/0.8 = 1.0
  EXPECT_NEAR(aimd.DecideStep(hot), -0.4, 1e-9);
  // Decrease saturates.
  ControlState inferno{0, 500, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(aimd.DecideStep(inferno), -0.5);
}

TEST(RateControllerTest, CloneProducesIndependentInstances) {
  MimdRateController proto(0.1, 0.02);
  auto clone = proto.Clone();
  ControlState bad{0, 100, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(clone->DecideStep(bad), -0.1);
}

// --- TopFullController --------------------------------------------------------

TEST(ControllerTest, UncappedApisAdmitEverything) {
  auto app = Fig1App();
  TopFullController controller(app.get(), std::make_unique<MimdRateController>());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(controller.Admit(0, Seconds(i)));
  EXPECT_FALSE(controller.RateLimit(0).has_value());
}

TEST(ControllerTest, ForcedRateLimitEnforced) {
  auto app = Fig1App();
  TopFullController controller(app.get(), std::make_unique<MimdRateController>());
  controller.ForceRateLimit(0, 100.0);
  ASSERT_TRUE(controller.RateLimit(0).has_value());
  EXPECT_DOUBLE_EQ(*controller.RateLimit(0), 100.0);
  int admitted = 0;
  for (SimTime t = 0; t < Seconds(10); t += Millis(1)) {
    admitted += controller.Admit(0, t) ? 1 : 0;
  }
  // ~100 rps for 10 s (plus the initial burst allowance).
  EXPECT_NEAR(admitted, 1000, 60);
}

TEST(ControllerTest, OverloadTriggersCapOnOffendingApi) {
  auto app = Fig1App();
  TopFullController controller(app.get(), std::make_unique<MimdRateController>());
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));  // 3x B's capacity
  app->RunFor(Seconds(15));
  ASSERT_TRUE(controller.RateLimit(0).has_value());
  EXPECT_LT(*controller.RateLimit(0), 1200.0);
  // api1 was never implicated (A is not overloaded): stays uncapped.
  EXPECT_FALSE(controller.RateLimit(1).has_value());
}

TEST(ControllerTest, RlControllerConvergesTowardsBottleneckCapacity) {
  auto app = Fig1App();
  // A deterministic "policy" stand-in: MIMD with strong steps acts like the
  // trained policy's direction. This test checks the control loop, not RL.
  TopFullController controller(app.get(),
                               std::make_unique<MimdRateController>(0.2, 0.05));
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));
  app->RunFor(Seconds(90));
  const double goodput = app->metrics().AvgGoodput(0, 60, 90);
  // B's capacity is 400 rps; the loop should hold most of it.
  EXPECT_GT(goodput, 250.0);
  EXPECT_LT(goodput, 450.0);
}

TEST(ControllerTest, RecoveryRestoresRateAfterOverloadEnds) {
  auto app = Fig1App();
  TopFullController controller(app.get(),
                               std::make_unique<MimdRateController>(0.2, 0.10));
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  // Overload B for 40 s, then drop to a sustainable rate.
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200).Then(Seconds(40), 200));
  app->RunFor(Seconds(40));
  ASSERT_TRUE(controller.RateLimit(0).has_value());
  app->RunFor(Seconds(120));
  // The recovery controller kept raising the limit well above the demand.
  EXPECT_GT(*controller.RateLimit(0), 220.0);
  EXPECT_NEAR(app->metrics().AvgGoodput(0, 130, 160), 200.0, 30.0);
}

TEST(ControllerTest, PriorityAwareAdjustHitsLowestPriorityFirst) {
  // Two APIs on one overloaded service with distinct priorities: a
  // negative Algorithm-1 action must move only the lower-priority API.
  auto app = std::make_unique<sim::Application>("prio", 19);
  const sim::ServiceId a = app->AddService(Svc("A", 10.0, 4, 1));  // 400 rps
  sim::ApiSpec hi("hi", 1);
  hi.AddPath(sim::ExecutionPath{sim::Chain({a}), 1.0, {}});
  app->AddApi(std::move(hi));
  sim::ApiSpec lo("lo", 2);
  lo.AddPath(sim::ExecutionPath{sim::Chain({a}), 1.0, {}});
  app->AddApi(std::move(lo));
  app->Finalize();

  TopFullController controller(app.get(),
                               std::make_unique<MimdRateController>(0.2, 0.02));
  controller.ForceRateLimit(0, 1000.0);
  controller.ForceRateLimit(1, 1000.0);
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(800));
  traffic.AddOpenLoop(1, workload::Schedule::Constant(800));  // A overloads
  // Run a few control ticks: decreases land on the low-priority API only.
  app->RunFor(Seconds(8));
  ASSERT_TRUE(controller.RateLimit(0).has_value());
  ASSERT_TRUE(controller.RateLimit(1).has_value());
  EXPECT_LT(*controller.RateLimit(1), 1000.0);
  EXPECT_GE(*controller.RateLimit(0), *controller.RateLimit(1));
}

TEST(ControllerTest, StateOfAggregatesCandidates) {
  auto app = Fig1App();
  TopFullController controller(app.get(), std::make_unique<MimdRateController>());
  controller.ForceRateLimit(0, 100.0);
  controller.ForceRateLimit(1, 300.0);
  const ControlState state = controller.StateOf({0, 1});
  EXPECT_DOUBLE_EQ(state.rate_limit, 400.0);
  EXPECT_DOUBLE_EQ(state.slo_s, 1.0);
}

TEST(ControllerTest, SequentialAblationControlsOneClusterPerTick) {
  // Two independent bottlenecks: with clustering disabled only one cluster
  // is acted on per tick, so after exactly one tick under double overload
  // only one API got capped.
  auto app = std::make_unique<sim::Application>("two-bottlenecks", 21);
  const sim::ServiceId s0 = app->AddService(Svc("X", 10.0, 4, 1));  // 400 rps
  const sim::ServiceId s1 = app->AddService(Svc("Y", 10.0, 4, 1));  // 400 rps
  sim::ApiSpec api0("a0", 1);
  api0.AddPath(sim::ExecutionPath{sim::Chain({s0}), 1.0, {}});
  app->AddApi(std::move(api0));
  sim::ApiSpec api1("a1", 1);
  api1.AddPath(sim::ExecutionPath{sim::Chain({s1}), 1.0, {}});
  app->AddApi(std::move(api1));
  app->Finalize();

  TopFullConfig config;
  config.enable_clustering = false;
  TopFullController controller(app.get(),
                               std::make_unique<MimdRateController>(0.2, 0.02), config);
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));
  traffic.AddOpenLoop(1, workload::Schedule::Constant(1200));
  // Exactly one controller tick fires (t=1 s, seeing the overloaded
  // [0, 1) window): only one of the two independent clusters is handled.
  app->RunFor(Millis(1500));
  const int capped = (controller.RateLimit(0) ? 1 : 0) + (controller.RateLimit(1) ? 1 : 0);
  EXPECT_EQ(capped, 1);
  app->RunFor(Seconds(2));
  EXPECT_TRUE(controller.RateLimit(0).has_value());
  EXPECT_TRUE(controller.RateLimit(1).has_value());
}

TEST(ControllerTest, DecisionsCounterAdvances) {
  auto app = Fig1App();
  TopFullController controller(app.get(), std::make_unique<MimdRateController>());
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));
  app->RunFor(Seconds(10));
  EXPECT_GT(controller.Decisions(), 0u);
}

// --- ClusterTracker (§4.2 re-clustering dynamics) ----------------------------

TEST(ClusterTrackerTest, DetectsMergeAndSplit) {
  // Two independent clusters {api0, api2} (via service 0) and
  // {api1, api3} (via service 1); overloading service 2 — shared by api2
  // and api3 — bridges them (Eq. 2 transitivity), then it splits back.
  auto app = MembershipApp(3, {{0}, {1}, {0, 2}, {1, 2}});
  ApiRegistry registry(*app);
  ClusterTracker tracker(app->NumApis());
  tracker.Record(1.0, BuildClusters(registry, {0, 1}));  // two clusters
  EXPECT_EQ(tracker.History().back().clusters, 2);
  tracker.Record(2.0, BuildClusters(registry, {0, 1, 2}));  // api2 bridges
  EXPECT_EQ(tracker.History().back().clusters, 1);
  EXPECT_EQ(tracker.History().back().merges, 1);
  EXPECT_EQ(tracker.History().back().splits, 0);
  tracker.Record(3.0, BuildClusters(registry, {0, 1}));  // bridge resolved
  EXPECT_EQ(tracker.History().back().clusters, 2);
  EXPECT_EQ(tracker.History().back().splits, 1);
  EXPECT_EQ(tracker.TotalMerges(), 1);
  EXPECT_EQ(tracker.TotalSplits(), 1);
}

TEST(ClusterTrackerTest, NoEventsOnStableClustering) {
  auto app = MembershipApp(2, {{0}, {1}});
  ApiRegistry registry(*app);
  ClusterTracker tracker(app->NumApis());
  for (int t = 0; t < 5; ++t) tracker.Record(t, BuildClusters(registry, {0, 1}));
  EXPECT_EQ(tracker.TotalMerges(), 0);
  EXPECT_EQ(tracker.TotalSplits(), 0);
  EXPECT_EQ(tracker.History().size(), 5u);
}

TEST(ControllerTest, HysteresisKeepsManagedServiceFlagged) {
  // With the two-threshold detector, a service that crossed the entry
  // threshold stays in the overloaded set while its utilisation sits
  // between exit and entry — visible through the cluster tracker.
  auto app = Fig1App();
  TopFullConfig config;
  config.overload.util_exit_threshold = 0.2;  // very sticky
  TopFullController controller(app.get(),
                               std::make_unique<MimdRateController>(0.2, 0.02),
                               config);
  ClusterTracker tracker(app->NumApis());
  controller.SetClusterTracker(&tracker);
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));
  app->RunFor(Seconds(40));
  // Once flagged, service B (util ~0.9 under control, > exit 0.2) never
  // leaves the overloaded set: after the first flagged tick, every tick
  // reports at least one cluster.
  bool seen = false;
  int unflagged_after_seen = 0;
  for (const auto& snap : tracker.History()) {
    if (snap.clusters > 0) seen = true;
    else if (seen) ++unflagged_after_seen;
  }
  EXPECT_TRUE(seen);
  EXPECT_EQ(unflagged_after_seen, 0);
}

}  // namespace
}  // namespace topfull::core

scenario: name=x
diurnal: low=100, high=900

scenario: name=x
scenario: name=x

# nothing but comments

# still nothing

scenario: name=x
fault:

scenario name=x duration=60

scenario: name=x
tenant: weight=0.5

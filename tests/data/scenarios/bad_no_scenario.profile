# phase before any scenario directive
phase: at=0, users=100

scenario: name=x
phase: at=0, users=many

scenario: name=x
phase: at=30, users=100
phase: at=10, users=200

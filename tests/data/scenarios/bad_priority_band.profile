scenario: name=x
tenant: name=t, weight=1, prio=20-5

scenario: app=boutique, duration=60

scenario: name=x
workload: users=100

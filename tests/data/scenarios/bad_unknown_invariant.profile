scenario: name=x
invariant: kind=latency_ceiling, value=1

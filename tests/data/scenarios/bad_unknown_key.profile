scenario: name=x
client: timeout=2, retires=3

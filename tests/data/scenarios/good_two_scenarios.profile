# A valid two-scenario profile exercising every directive.
scenario: name=storm, app=boutique, duration=90, seed=7, static=800
phase: at=0, users=300
phase: at=20, users=2000, ramp=5
phase: at=60, users=300
tenant: name=premium, weight=0.4, prio=0-15
tenant: name=free, weight=0.6, prio=100-127
client: timeout=2, retries=2, backoff=0.2, think=1
rpc: timeout=0.5, retries=1, backoff=0.05
invariant: kind=max_retry_amplification, value=4
invariant: kind=goodput_floor, value=200, from=20
expect_violation: controller=static, invariant=goodput_floor

scenario: name=daynight, duration=120, distinct_prio=1
diurnal: low=200, high=1500, period=60
fault: crash ProductCatalog at=30 for=10
fault: slow Checkout at=50 for=20 factor=3
invariant: kind=goodput_floor, value=100

// Unit tests for the discrete-event engine: ordering, determinism, periodic
// scheduling, run-until semantics, timer cancellation, and a randomized
// property test of the indexed heap against a std::multimap reference model.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "des/simulation.hpp"

namespace topfull::des {
namespace {

TEST(SimulationTest, ProcessesEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(3), [&]() { order.push_back(3); });
  sim.ScheduleAt(Seconds(1), [&]() { order.push_back(1); });
  sim.ScheduleAt(Seconds(2), [&]() { order.push_back(2); });
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.EventsProcessed(), 3u);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Seconds(1), [&order, i]() { order.push_back(i); });
  }
  sim.RunUntil(Seconds(2));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAt(Millis(250), [&]() { seen = sim.Now(); });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(seen, Millis(250));
  EXPECT_EQ(sim.Now(), Seconds(1));  // clock lands on the horizon
}

TEST(SimulationTest, RunUntilDoesNotProcessLaterEvents) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(Seconds(5), [&]() { fired = true; });
  sim.RunUntil(Seconds(4));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(Seconds(6));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  SimTime when = 0;
  sim.ScheduleAt(Seconds(2), [&]() {
    sim.ScheduleAfter(Seconds(3), [&]() { when = sim.Now(); });
  });
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(when, Seconds(5));
}

TEST(SimulationTest, EventsScheduledDuringRunAreProcessed) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    ++count;
    if (count < 5) sim.ScheduleAfter(Seconds(1), chain);
  };
  sim.ScheduleAt(0, chain);
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(count, 5);
}

TEST(SimulationTest, PeriodicFiresAtFixedCadence) {
  Simulation sim;
  std::vector<SimTime> fires;
  sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { fires.push_back(sim.Now()); });
  sim.RunUntil(Seconds(5));
  ASSERT_EQ(fires.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(fires[static_cast<std::size_t>(i)], Seconds(i + 1));
}

TEST(SimulationTest, PeriodicCallbacksKeepRelativeOrder) {
  // Two periodic tasks at the same cadence keep their registration order at
  // every firing — the property the metrics-then-controllers pipeline
  // relies on.
  Simulation sim;
  std::vector<char> order;
  sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { order.push_back('a'); });
  sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { order.push_back('b'); });
  sim.RunUntil(Seconds(3));
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < order.size(); i += 2) {
    EXPECT_EQ(order[i], 'a');
    EXPECT_EQ(order[i + 1], 'b');
  }
}

TEST(SimulationTest, StepProcessesSingleEvent) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(Seconds(1), [&]() { ++count; });
  sim.ScheduleAt(Seconds(2), [&]() { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

// --- Cancellation / reschedule semantics ------------------------------------

TEST(TimerCancelTest, CancelRemovesPendingEvent) {
  Simulation sim;
  bool a = false, b = false;
  const auto ha = sim.ScheduleAt(Seconds(1), [&]() { a = true; });
  sim.ScheduleAt(Seconds(2), [&]() { b = true; });
  EXPECT_TRUE(sim.Cancel(ha));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(Seconds(3));
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(sim.EventsProcessed(), 1u);  // cancelled events never fire
  EXPECT_EQ(sim.EventsCancelled(), 1u);
  EXPECT_EQ(sim.EventsScheduled(), 2u);
}

TEST(TimerCancelTest, CancelIsIdempotentAndStaleAfterFiring) {
  Simulation sim;
  const auto h = sim.ScheduleAt(Seconds(1), []() {});
  EXPECT_TRUE(sim.Cancel(h));
  EXPECT_FALSE(sim.Cancel(h));  // double cancel

  const auto h2 = sim.ScheduleAt(Seconds(1), []() {});
  sim.RunUntil(Seconds(2));
  EXPECT_FALSE(sim.Cancel(h2));  // already fired
  EXPECT_FALSE(sim.Cancel(Simulation::TimerHandle{}));  // never scheduled
}

TEST(TimerCancelTest, SlotReuseIsAbaSafe) {
  Simulation sim;
  bool old_fired = false, new_fired = false;
  const auto stale = sim.ScheduleAt(Seconds(1), [&]() { old_fired = true; });
  ASSERT_TRUE(sim.Cancel(stale));
  // The freed slot is reused immediately (LIFO free list); the stale handle
  // must not be able to touch the new occupant.
  const auto fresh = sim.ScheduleAt(Seconds(1), [&]() { new_fired = true; });
  EXPECT_EQ(fresh.slot, stale.slot);
  EXPECT_NE(fresh.gen, stale.gen);
  EXPECT_FALSE(sim.Cancel(stale));
  EXPECT_FALSE(sim.Reschedule(stale, Seconds(5)));
  sim.RunUntil(Seconds(2));
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST(TimerCancelTest, RescheduleMovesEventToFreshTieBreakPosition) {
  Simulation sim;
  std::vector<char> order;
  const auto ha = sim.ScheduleAt(Seconds(1), [&]() { order.push_back('a'); });
  sim.ScheduleAt(Seconds(2), [&]() { order.push_back('b'); });
  // Moving 'a' onto 'b''s time slots it BEHIND 'b': a reschedule reads as
  // cancel + schedule, so the event goes to the back of the tie.
  EXPECT_TRUE(sim.Reschedule(ha, Seconds(2)));
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(order, (std::vector<char>{'b', 'a'}));
}

TEST(TimerCancelTest, ReschedulePastClampsToNow) {
  Simulation sim;
  sim.ScheduleAt(Seconds(5), []() {});
  sim.RunUntil(Seconds(4));
  SimTime fired_at = -1;
  // Can't happen "yesterday"; fires at the current clock instead.
  const auto h = sim.ScheduleAt(Seconds(6), [&]() { fired_at = sim.Now(); });
  EXPECT_TRUE(sim.Reschedule(h, Seconds(1)));
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fired_at, Seconds(4));
}

TEST(TimerCancelTest, PeriodicCancelStopsFirings) {
  Simulation sim;
  int fires = 0;
  const auto h = sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { ++fires; });
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(sim.Cancel(h));
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(TimerCancelTest, PeriodicCanCancelItselfFromItsOwnCallback) {
  Simulation sim;
  int fires = 0;
  Simulation::TimerHandle h;
  h = sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() {
    if (++fires == 3) {
      EXPECT_TRUE(sim.Cancel(h));
      EXPECT_FALSE(sim.Cancel(h));  // second cancel inside the callback
    }
  });
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_FALSE(sim.Cancel(h));  // handle dead once the slot is freed
}

TEST(TimerCancelTest, PeriodicRescheduleShiftsNextFiringOnly) {
  Simulation sim;
  std::vector<SimTime> fires;
  const auto h = sim.SchedulePeriodic(Seconds(1), Seconds(1),
                                      [&]() { fires.push_back(sim.Now()); });
  // Delay the first firing to t=3; the period then resumes from there.
  EXPECT_TRUE(sim.Reschedule(h, Seconds(3)));
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(3), Seconds(4), Seconds(5)}));
}

TEST(TimerCancelTest, HandleStaysValidAcrossPeriodicRearms) {
  Simulation sim;
  int fires = 0;
  const auto h = sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { ++fires; });
  sim.RunUntil(Seconds(2));
  EXPECT_TRUE(sim.Cancel(h));  // same handle, two re-arms later
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fires, 2);
}

// --- Property test: random interleavings vs a reference model ---------------

// The engine's pending set must behave exactly like a std::multimap keyed by
// (when, insertion order): schedule inserts at the back of its time's tie
// range, cancel erases, reschedule erases + re-inserts at the back, and
// RunUntil pops in key order. The 4-ary heap invariant is checked after
// every mutation.
TEST(TimerQueueProperty, MatchesMultimapReferenceModel) {
  Rng rng(0x70F4);
  Simulation sim;
  using Key = std::pair<SimTime, std::uint64_t>;
  std::multimap<Key, int> model;
  struct Live {
    Simulation::TimerHandle handle;
    Key key;
    int token;
  };
  std::vector<Live> live;
  std::vector<int> fired;
  std::uint64_t order = 0;  // mirrors the engine's seq allocation order
  int next_token = 0;

  for (int round = 0; round < 300; ++round) {
    const int ops = static_cast<int>(rng.UniformInt(1, 8));
    for (int k = 0; k < ops; ++k) {
      const double u = rng.NextDouble();
      if (u < 0.55 || live.empty()) {
        // Schedule. Small time range on purpose: dense tie collisions.
        const SimTime when = sim.Now() + rng.UniformInt(0, 200);
        const int token = next_token++;
        const auto handle =
            sim.ScheduleAt(when, [token, &fired]() { fired.push_back(token); });
        const Key key{when, order++};
        model.emplace(key, token);
        live.push_back(Live{handle, key, token});
      } else if (u < 0.8) {
        // Cancel a random live event.
        const auto idx = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        ASSERT_TRUE(sim.Cancel(live[idx].handle));
        EXPECT_FALSE(sim.Cancel(live[idx].handle));
        for (auto it = model.lower_bound(live[idx].key); it != model.end(); ++it) {
          if (it->second == live[idx].token) {
            model.erase(it);
            break;
          }
        }
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        // Reschedule a random live event: same token, fresh tie position.
        const auto idx = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        const SimTime when = sim.Now() + rng.UniformInt(0, 200);
        ASSERT_TRUE(sim.Reschedule(live[idx].handle, when));
        for (auto it = model.lower_bound(live[idx].key); it != model.end(); ++it) {
          if (it->second == live[idx].token) {
            model.erase(it);
            break;
          }
        }
        live[idx].key = Key{when, order++};
        model.emplace(live[idx].key, live[idx].token);
      }
      ASSERT_TRUE(sim.CheckHeapInvariant());
    }

    // Advance to a random horizon and compare the fired tokens with the
    // model's expected pop order.
    const SimTime horizon = sim.Now() + rng.UniformInt(0, 120);
    fired.clear();
    sim.RunUntil(horizon);
    ASSERT_TRUE(sim.CheckHeapInvariant());
    std::vector<int> expected;
    while (!model.empty() && model.begin()->first.first <= horizon) {
      expected.push_back(model.begin()->second);
      model.erase(model.begin());
    }
    ASSERT_EQ(fired, expected) << "divergence in round " << round;
    for (const int token : fired) {
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->token == token) {
          EXPECT_FALSE(sim.Cancel(it->handle));  // fired handles are stale
          live.erase(it);
          break;
        }
      }
    }
    EXPECT_EQ(sim.PendingEvents(), model.size());
  }

  // Drain everything left and compare the tail.
  fired.clear();
  sim.RunUntil(sim.Now() + Seconds(10));
  std::vector<int> expected;
  for (const auto& [key, token] : model) expected.push_back(token);
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  ASSERT_TRUE(sim.CheckHeapInvariant());
}

}  // namespace
}  // namespace topfull::des

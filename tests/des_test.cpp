// Unit tests for the discrete-event engine: ordering, determinism, periodic
// scheduling, run-until semantics.
#include <gtest/gtest.h>

#include <vector>

#include "des/simulation.hpp"

namespace topfull::des {
namespace {

TEST(SimulationTest, ProcessesEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(3), [&]() { order.push_back(3); });
  sim.ScheduleAt(Seconds(1), [&]() { order.push_back(1); });
  sim.ScheduleAt(Seconds(2), [&]() { order.push_back(2); });
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.EventsProcessed(), 3u);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Seconds(1), [&order, i]() { order.push_back(i); });
  }
  sim.RunUntil(Seconds(2));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAt(Millis(250), [&]() { seen = sim.Now(); });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(seen, Millis(250));
  EXPECT_EQ(sim.Now(), Seconds(1));  // clock lands on the horizon
}

TEST(SimulationTest, RunUntilDoesNotProcessLaterEvents) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(Seconds(5), [&]() { fired = true; });
  sim.RunUntil(Seconds(4));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(Seconds(6));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  SimTime when = 0;
  sim.ScheduleAt(Seconds(2), [&]() {
    sim.ScheduleAfter(Seconds(3), [&]() { when = sim.Now(); });
  });
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(when, Seconds(5));
}

TEST(SimulationTest, EventsScheduledDuringRunAreProcessed) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    ++count;
    if (count < 5) sim.ScheduleAfter(Seconds(1), chain);
  };
  sim.ScheduleAt(0, chain);
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(count, 5);
}

TEST(SimulationTest, PeriodicFiresAtFixedCadence) {
  Simulation sim;
  std::vector<SimTime> fires;
  sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { fires.push_back(sim.Now()); });
  sim.RunUntil(Seconds(5));
  ASSERT_EQ(fires.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(fires[static_cast<std::size_t>(i)], Seconds(i + 1));
}

TEST(SimulationTest, PeriodicCallbacksKeepRelativeOrder) {
  // Two periodic tasks at the same cadence keep their registration order at
  // every firing — the property the metrics-then-controllers pipeline
  // relies on.
  Simulation sim;
  std::vector<char> order;
  sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { order.push_back('a'); });
  sim.SchedulePeriodic(Seconds(1), Seconds(1), [&]() { order.push_back('b'); });
  sim.RunUntil(Seconds(3));
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < order.size(); i += 2) {
    EXPECT_EQ(order[i], 'a');
    EXPECT_EQ(order[i + 1], 'b');
  }
}

TEST(SimulationTest, StepProcessesSingleEvent) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(Seconds(1), [&]() { ++count; });
  sim.ScheduleAt(Seconds(2), [&]() { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace topfull::des

// Byte-identity regression test for the allocation-free engine rewrite.
//
// The inline-event timer queue, arena-pooled request records, and cancellable
// hop timeouts must not change a single observable byte: these digests were
// captured from the pre-rewrite engine (shared_ptr control blocks +
// std::priority_queue + std::function events) on the reference toolchain and
// the rewritten engine must reproduce them exactly — same (when, seq)
// tie-break order, same RNG stream, same metrics timeline at every
// ThreadPool size.
//
// The golden constants are toolchain-sensitive only through libm (latency
// percentiles go through exp/log in service-time sampling); set
// TOPFULL_STRICT_GOLDEN=0 to skip the absolute-digest checks on a foreign
// libm. Cross-pool-size identity is checked unconditionally.
//
// Keep the config code EXACTLY in sync with the capture tool used to mint
// the goldens (see DESIGN.md §10).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "common/thread_pool.hpp"
#include "exp/harness.hpp"
#include "exp/run_executor.hpp"
#include "exp/sharded_run.hpp"
#include "sim/app.hpp"
#include "sim/sharded_app.hpp"
#include "workload/generators.hpp"

namespace topfull {
namespace {

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Full-precision serialization of everything a run can observe: the entire
/// metrics timeline, RPC counters, and the fault log.
std::string Serialize(const sim::Application& app,
                      const std::vector<fault::FaultRecord>* log = nullptr) {
  std::string out;
  char buf[512];
  for (const auto& snap : app.metrics().Timeline()) {
    std::snprintf(buf, sizeof buf, "t=%.17g\n", snap.t_end_s);
    out += buf;
    for (const auto& a : snap.apis) {
      std::snprintf(buf, sizeof buf,
                    "api o=%llu a=%llu re=%llu rs=%llu c=%llu g=%llu "
                    "p50=%.17g p95=%.17g p99=%.17g mean=%.17g\n",
                    static_cast<unsigned long long>(a.offered),
                    static_cast<unsigned long long>(a.admitted),
                    static_cast<unsigned long long>(a.rejected_entry),
                    static_cast<unsigned long long>(a.rejected_service),
                    static_cast<unsigned long long>(a.completed),
                    static_cast<unsigned long long>(a.good), a.latency_p50_ms,
                    a.latency_p95_ms, a.latency_p99_ms, a.latency_mean_ms);
      out += buf;
    }
    for (const auto& s : snap.services) {
      std::snprintf(buf, sizeof buf,
                    "svc util=%.17g avgq=%.17g maxq=%.17g pods=%d out=%d\n",
                    s.cpu_utilization, s.avg_queue_delay_s, s.max_queue_delay_s,
                    s.running_pods, s.outstanding);
      out += buf;
    }
  }
  std::snprintf(buf, sizeof buf, "timeouts=%llu retries=%llu inflight=%d\n",
                static_cast<unsigned long long>(app.HopTimeouts()),
                static_cast<unsigned long long>(app.Retries()), app.Inflight());
  out += buf;
  if (log != nullptr) {
    for (const auto& r : *log) {
      std::snprintf(buf, sizeof buf, "fault t=%lld %s %s %s sev=%.17g n=%d\n",
                    static_cast<long long>(r.at), fault::FaultTypeName(r.type),
                    fault::FaultActionName(r.action), r.service.c_str(),
                    r.severity, r.count);
      out += buf;
    }
  }
  return out;
}

/// Reduced fig08 config: Online Boutique under closed-loop overload, one
/// MIMD-controlled run and one DAGOR run.
std::vector<exp::RunSpec> Fig08Specs() {
  std::vector<exp::RunSpec> specs;
  for (const exp::Variant variant :
       {exp::Variant::kTopFullMimd, exp::Variant::kDagor}) {
    exp::RunSpec spec;
    spec.label = exp::VariantName(variant);
    spec.duration_s = 12.0;
    spec.variant = variant;
    spec.make_app = [variant] {
      apps::BoutiqueOptions options;
      options.seed = 17;
      options.distinct_priorities = variant == exp::Variant::kDagor;
      return apps::MakeOnlineBoutique(options);
    };
    spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
      workload::ClosedLoopConfig users = exp::UniformUsers(app);
      users.mix.weights = {1.0, 1.2, 0.9, 0.9, 1.0};
      traffic.AddClosedLoop(users, workload::Schedule::Constant(1500));
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Reduced fig18 config: Train Ticket with hop timeouts + one retry, 10
/// ts-station pods crashed at t=6 s and rolled back in from t=12 s.
std::vector<exp::RunSpec> Fig18Specs() {
  std::vector<exp::RunSpec> specs;
  for (const exp::Variant variant :
       {exp::Variant::kTopFullMimd, exp::Variant::kNoControl}) {
    exp::RunSpec spec;
    spec.label = exp::VariantName(variant);
    spec.duration_s = 18.0;
    spec.variant = variant;
    spec.topfull_config.recovery_step = 0.5;
    spec.topfull_config.deactivate_when_slack = true;
    spec.make_app = [] {
      apps::TrainTicketOptions options;
      options.seed = 83;
      auto app = apps::MakeTrainTicket(options);
      app->ConfigureRpc(Millis(800), /*max_retries=*/1, Millis(50));
      return app;
    };
    spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
      traffic.AddClosedLoop(exp::UniformUsers(app),
                            workload::Schedule::Constant(900));
    };
    spec.faults.CrashPods("ts-station", Seconds(6), 10, Seconds(6), Seconds(1));
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Blocking-RPC chain under overload with tight hop timeouts: covers the
/// held-worker-slot dispatch path and the timeout/late-completion race.
std::vector<exp::RunSpec> BlockingSpecs() {
  exp::RunSpec spec;
  spec.label = "blocking-chain";
  spec.duration_s = 15.0;
  spec.make_app = [] {
    auto app = std::make_unique<sim::Application>("blocking-chain", 29);
    const char* names[] = {"front", "mid", "back"};
    for (int i = 0; i < 3; ++i) {
      sim::ServiceConfig config;
      config.name = names[i];
      config.mean_service_ms = 4.0 + 3.0 * i;
      config.threads = 4;
      config.initial_pods = 2;
      config.max_queue = 64;
      config.blocking_rpc = i < 2;  // front and mid hold worker slots
      app->AddService(config);
    }
    sim::ApiSpec spec_api("chain", 1);
    spec_api.AddPath(sim::ExecutionPath{sim::Chain({0, 1, 2}), 1.0, {}});
    app->AddApi(std::move(spec_api));
    app->Finalize();
    app->ConfigureRpc(Millis(60), /*max_retries=*/1, Millis(5));
    return app;
  };
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
    traffic.AddClosedLoop(exp::UniformUsers(app),
                          workload::Schedule::Constant(400));
  };
  std::vector<exp::RunSpec> specs;
  specs.push_back(std::move(spec));
  return specs;
}

std::uint64_t SweepDigest(const std::vector<exp::RunSpec>& specs, int pool_size) {
  ThreadPool pool(pool_size);
  const std::vector<exp::RunResult> results = exp::RunExecutor(&pool).Execute(specs);
  std::string all;
  for (const auto& r : results) {
    all += r.label;
    all += '\n';
    all += Serialize(*r.app, &r.fault_log);
  }
  return Fnv1a(all);
}

bool StrictGolden() {
  const char* env = std::getenv("TOPFULL_STRICT_GOLDEN");
  return env == nullptr || std::string(env) != "0";
}

void CheckCase(std::vector<exp::RunSpec> (*make)(), std::uint64_t golden) {
  const std::uint64_t d1 = SweepDigest(make(), /*pool_size=*/1);
  const std::uint64_t d4 = SweepDigest(make(), /*pool_size=*/4);
  EXPECT_EQ(d1, d4) << "run digest depends on ThreadPool size";
  if (StrictGolden()) {
    EXPECT_EQ(d1, golden)
        << "engine output diverged from the seed-engine golden digest "
        << "(set TOPFULL_STRICT_GOLDEN=0 on a foreign libm)";
  }
}

// Goldens captured from the pre-rewrite seed engine (commit 62e3978) with the
// same serialization, on the reference toolchain.
TEST(EngineIdentityTest, Fig08BoutiqueMatchesSeedEngine) {
  CheckCase(Fig08Specs, 0xc68e4a7aac39ce8dull);
}

TEST(EngineIdentityTest, Fig18TrainTicketWithFaultsMatchesSeedEngine) {
  CheckCase(Fig18Specs, 0x98c210e206ab2bceull);
}

TEST(EngineIdentityTest, BlockingChainTimeoutsMatchSeedEngine) {
  CheckCase(BlockingSpecs, 0x36cd526757bf7b35ull);
}

// --- Sharded engine identity -------------------------------------------------

/// Serialization of a sharded run's merged observables, mirroring
/// Serialize() field-for-field plus the cross-shard call counter.
std::string SerializeSharded(const sim::ShardedApp& app,
                             const std::vector<fault::FaultRecord>& log) {
  std::string out;
  char buf[512];
  for (const auto& snap : app.MergedTimeline()) {
    std::snprintf(buf, sizeof buf, "t=%.17g\n", snap.t_end_s);
    out += buf;
    for (const auto& a : snap.apis) {
      std::snprintf(buf, sizeof buf,
                    "api o=%llu a=%llu re=%llu rs=%llu c=%llu g=%llu "
                    "p50=%.17g p95=%.17g p99=%.17g mean=%.17g\n",
                    static_cast<unsigned long long>(a.offered),
                    static_cast<unsigned long long>(a.admitted),
                    static_cast<unsigned long long>(a.rejected_entry),
                    static_cast<unsigned long long>(a.rejected_service),
                    static_cast<unsigned long long>(a.completed),
                    static_cast<unsigned long long>(a.good), a.latency_p50_ms,
                    a.latency_p95_ms, a.latency_p99_ms, a.latency_mean_ms);
      out += buf;
    }
    for (const auto& s : snap.services) {
      std::snprintf(buf, sizeof buf,
                    "svc util=%.17g avgq=%.17g maxq=%.17g pods=%d out=%d\n",
                    s.cpu_utilization, s.avg_queue_delay_s, s.max_queue_delay_s,
                    s.running_pods, s.outstanding);
      out += buf;
    }
  }
  std::snprintf(buf, sizeof buf,
                "timeouts=%llu retries=%llu inflight=%d remote=%llu\n",
                static_cast<unsigned long long>(app.HopTimeouts()),
                static_cast<unsigned long long>(app.Retries()), app.Inflight(),
                static_cast<unsigned long long>(app.RemoteCalls()));
  out += buf;
  for (const auto& r : log) {
    std::snprintf(buf, sizeof buf, "fault t=%lld %s %s %s sev=%.17g n=%d\n",
                  static_cast<long long>(r.at), fault::FaultTypeName(r.type),
                  fault::FaultActionName(r.action), r.service.c_str(),
                  r.severity, r.count);
    out += buf;
  }
  return out;
}

/// Digest of `specs` run through the sharded executor. At shards == 1 the
/// per-run serialization is byte-compatible with SweepDigest's (same
/// Serialize, same label framing), so digests compare across executors.
std::uint64_t ShardedSweepDigest(const std::vector<exp::RunSpec>& specs,
                                 int shards, bool threaded) {
  std::string all;
  for (const auto& spec : specs) {
    exp::ShardedRunOptions options;
    options.shards = shards;
    options.threaded = threaded;
    const exp::ShardedRunResult r = exp::RunShardedSpec(spec, options);
    all += r.label;
    all += '\n';
    if (shards == 1) {
      all += Serialize(r.app->app(0), &r.fault_log);
    } else {
      all += SerializeSharded(*r.app, r.fault_log);
    }
  }
  return Fnv1a(all);
}

/// shards=1 must be byte-identical to the unsharded engine: same goldens,
/// and (toolchain-independently) the same digest the direct executor
/// produces in this very process.
void CheckShardedOne(std::vector<exp::RunSpec> (*make)(), std::uint64_t golden) {
  const std::uint64_t sharded = ShardedSweepDigest(make(), /*shards=*/1,
                                                   /*threaded=*/true);
  EXPECT_EQ(sharded, SweepDigest(make(), /*pool_size=*/1))
      << "shards=1 diverged from the unsharded executor";
  if (StrictGolden()) {
    EXPECT_EQ(sharded, golden)
        << "shards=1 diverged from the seed-engine golden digest";
  }
}

TEST(EngineIdentityTest, Fig08ShardsOneMatchesSeedEngine) {
  CheckShardedOne(Fig08Specs, 0xc68e4a7aac39ce8dull);
}

TEST(EngineIdentityTest, Fig18ShardsOneMatchesSeedEngine) {
  CheckShardedOne(Fig18Specs, 0x98c210e206ab2bceull);
}

// Golden captured from this engine at shards=4 on the reference toolchain
// (fig08 boutique, per-service split, 1 ms cross-shard latency). Pins the
// sharded protocol end to end: partitioner, window rounds, mailbox drain
// order, cross-shard RPC and the deterministic merge.
TEST(EngineIdentityTest, Fig08ShardsFourIsSelfConsistent) {
  const std::uint64_t threaded1 = ShardedSweepDigest(Fig08Specs(), 4, true);
  const std::uint64_t threaded2 = ShardedSweepDigest(Fig08Specs(), 4, true);
  const std::uint64_t sequential = ShardedSweepDigest(Fig08Specs(), 4, false);
  EXPECT_EQ(threaded1, threaded2) << "sharded digest differs across runs";
  EXPECT_EQ(threaded1, sequential)
      << "sharded digest depends on the execution mode";
  if (StrictGolden()) {
    EXPECT_EQ(threaded1, 0xf6c48484d7b87df9ull)
        << "sharded-engine output diverged from the pinned digest "
        << "(set TOPFULL_STRICT_GOLDEN=0 on a foreign libm)";
  }
}

}  // namespace
}  // namespace topfull

// Tests for the experiment harness: variant attachment, helpers, and the
// application-backed RL environment.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "apps/online_boutique.hpp"
#include "exp/harness.hpp"
#include "exp/csv.hpp"
#include "exp/microservice_env.hpp"

namespace topfull::exp {
namespace {

TEST(HarnessTest, VariantNames) {
  EXPECT_EQ(VariantName(Variant::kTopFull), "TopFull");
  EXPECT_EQ(VariantName(Variant::kDagor), "DAGOR");
  EXPECT_EQ(VariantName(Variant::kTopFullNoCluster), "TopFull(w/o cluster)");
}

TEST(HarnessTest, AttachNoControlInstallsNothing) {
  auto app = apps::MakeOnlineBoutique({});
  Controllers controllers;
  controllers.Attach(Variant::kNoControl, *app, nullptr);
  EXPECT_EQ(controllers.topfull(), nullptr);
  EXPECT_EQ(controllers.dagor(), nullptr);
  EXPECT_EQ(controllers.breakwater(), nullptr);
}

TEST(HarnessTest, AttachMimdCreatesEntryController) {
  auto app = apps::MakeOnlineBoutique({});
  Controllers controllers;
  controllers.Attach(Variant::kTopFullMimd, *app, nullptr);
  ASSERT_NE(controllers.topfull(), nullptr);
  EXPECT_TRUE(controllers.topfull()->config().enable_clustering);
}

TEST(HarnessTest, AttachDagorInstallsOnEveryService) {
  auto app = apps::MakeOnlineBoutique({});
  Controllers controllers;
  controllers.Attach(Variant::kDagor, *app, nullptr);
  ASSERT_NE(controllers.dagor(), nullptr);
}

TEST(HarnessTest, UniformUsersCoversAllApis) {
  auto app = apps::MakeOnlineBoutique({});
  const auto config = UniformUsers(*app);
  EXPECT_EQ(config.mix.weights.size(), static_cast<std::size_t>(app->NumApis()));
}

TEST(HarnessTest, PerApiGoodputRowHasTotal) {
  auto app = apps::MakeOnlineBoutique({});
  app->RunFor(Seconds(3));
  const auto row = PerApiGoodputRow(*app, 0.0);
  EXPECT_EQ(row.size(), static_cast<std::size_t>(app->NumApis()) + 1);
}

TEST(MicroserviceEnvTest, EpisodeLifecycle) {
  MicroserviceEnvConfig config;
  config.factory = [](std::uint64_t seed) {
    apps::BoutiqueOptions options;
    options.seed = seed;
    return apps::MakeOnlineBoutique(options);
  };
  config.api_rate_ranges = {{100, 500}};
  config.steps_per_episode = 5;
  config.warmup = Seconds(2);
  MicroserviceEnv env(std::move(config));

  const auto obs = env.Reset(1);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_GE(obs[0], 0.0);
  EXPECT_LE(obs[0], 2.0);
  for (int t = 0; t < 4; ++t) {
    const auto result = env.Step(0.0);
    EXPECT_FALSE(result.done);
    EXPECT_TRUE(std::isfinite(result.reward));
  }
  EXPECT_TRUE(env.Step(0.0).done);
}

TEST(MicroserviceEnvTest, ResetRebuildsApplication) {
  MicroserviceEnvConfig config;
  config.factory = [](std::uint64_t seed) {
    apps::BoutiqueOptions options;
    options.seed = seed;
    return apps::MakeOnlineBoutique(options);
  };
  config.api_rate_ranges = {{100, 300}};
  config.steps_per_episode = 3;
  config.warmup = Seconds(1);
  MicroserviceEnv env(std::move(config));
  env.Reset(1);
  sim::Application* first = env.app();
  env.Reset(2);
  EXPECT_NE(env.app(), first);
}

TEST(MicroserviceEnvTest, NegativeActionsThrottleAdmission) {
  MicroserviceEnvConfig config;
  config.factory = [](std::uint64_t seed) {
    apps::BoutiqueOptions options;
    options.seed = seed;
    return apps::MakeOnlineBoutique(options);
  };
  // Heavy overload so the controller caps every API quickly.
  config.api_rate_ranges = {{1500, 1600}};
  config.steps_per_episode = 30;
  config.warmup = Seconds(2);
  MicroserviceEnv env(std::move(config));
  env.Reset(3);
  for (int t = 0; t < 10; ++t) env.Step(-0.5);
  const auto& snap = env.app()->metrics().Latest();
  std::uint64_t admitted = 0, offered = 0;
  for (const auto& api : snap.apis) {
    admitted += api.admitted;
    offered += api.offered;
  }
  EXPECT_LT(static_cast<double>(admitted), 0.5 * static_cast<double>(offered));
}

TEST(CsvTest, TimelineExportHasHeaderAndRows) {
  auto app = apps::MakeOnlineBoutique({});
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(100));
  app->RunFor(Seconds(5));
  const std::string path = ::testing::TempDir() + "/timeline.csv";
  ASSERT_TRUE(WriteTimelineCsv(*app, path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("good_postcheckout"), std::string::npos);
  EXPECT_NE(line.find("util_recommendation"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 5);  // one per 1 s window
}

TEST(ExternalActionControllerTest, SharesSlotAcrossClones) {
  auto slot = std::make_shared<double>(0.25);
  ExternalActionController controller(slot);
  auto clone = controller.Clone();
  core::ControlState state;
  EXPECT_DOUBLE_EQ(clone->DecideStep(state), 0.25);
  *slot = -0.4;
  EXPECT_DOUBLE_EQ(controller.DecideStep(state), -0.4);
  EXPECT_DOUBLE_EQ(clone->DecideStep(state), -0.4);
}

}  // namespace
}  // namespace topfull::exp

// Tests for the deterministic fault-injection engine (src/fault): the
// no-perturbation contract, every fault type end to end, the textual
// profile parser, seeded chaos schedules, and the acceptance bar of the
// subsystem — byte-identical metrics timelines for a fixed fault profile
// across thread-pool sizes and with tracing on/off.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/cluster.hpp"
#include "common/thread_pool.hpp"
#include "exp/run_executor.hpp"
#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "fault/profile.hpp"
#include "obs/trace.hpp"
#include "sim/app.hpp"
#include "workload/generators.hpp"

namespace topfull {
namespace {

// --- Fixture: a two-tier app driven by a deterministic arrival clock --------

constexpr sim::ServiceId kFront = 0;
constexpr sim::ServiceId kBack = 1;

std::unique_ptr<sim::Application> MakeTwoTierApp(std::uint64_t seed = 7) {
  auto app = std::make_unique<sim::Application>("faultfix", seed);
  sim::ServiceConfig front;
  front.name = "front";
  front.mean_service_ms = 4.0;
  front.threads = 4;
  front.initial_pods = 2;
  app->AddService(front);
  sim::ServiceConfig back;
  back.name = "back";
  back.mean_service_ms = 10.0;
  back.threads = 4;
  back.initial_pods = 4;
  app->AddService(back);
  sim::ApiSpec spec("get", 1);
  spec.AddPath(sim::ExecutionPath{sim::Chain({kFront, kBack}), 1.0, {}});
  app->AddApi(std::move(spec));
  app->Finalize();
  return app;
}

/// Fixed-period open-loop arrivals: no RNG, so any divergence a test sees
/// comes from the injector, never the workload.
void DrivePeriodic(sim::Application& app, SimTime period, SimTime until) {
  app.sim().SchedulePeriodic(period, period, [&app, until](){
    if (app.sim().Now() <= until) app.Submit(0);
  });
}

/// Serialises the full metrics timeline (plus RPC counters and, when given,
/// the fault log) with every float at full precision. Equal digests mean
/// byte-identical observable results.
std::string Digest(const sim::Application& app,
                   const std::vector<fault::FaultRecord>* log = nullptr) {
  std::string out;
  char buf[512];
  for (const auto& snap : app.metrics().Timeline()) {
    std::snprintf(buf, sizeof buf, "t=%.17g\n", snap.t_end_s);
    out += buf;
    for (const auto& a : snap.apis) {
      std::snprintf(buf, sizeof buf,
                    "api o=%llu a=%llu re=%llu rs=%llu c=%llu g=%llu "
                    "p50=%.17g p95=%.17g p99=%.17g mean=%.17g\n",
                    static_cast<unsigned long long>(a.offered),
                    static_cast<unsigned long long>(a.admitted),
                    static_cast<unsigned long long>(a.rejected_entry),
                    static_cast<unsigned long long>(a.rejected_service),
                    static_cast<unsigned long long>(a.completed),
                    static_cast<unsigned long long>(a.good), a.latency_p50_ms,
                    a.latency_p95_ms, a.latency_p99_ms, a.latency_mean_ms);
      out += buf;
    }
    for (const auto& s : snap.services) {
      std::snprintf(buf, sizeof buf,
                    "svc util=%.17g avgq=%.17g maxq=%.17g pods=%d out=%d\n",
                    s.cpu_utilization, s.avg_queue_delay_s, s.max_queue_delay_s,
                    s.running_pods, s.outstanding);
      out += buf;
    }
  }
  std::snprintf(buf, sizeof buf, "timeouts=%llu retries=%llu inflight=%d\n",
                static_cast<unsigned long long>(app.HopTimeouts()),
                static_cast<unsigned long long>(app.Retries()), app.Inflight());
  out += buf;
  if (log != nullptr) {
    for (const auto& r : *log) {
      std::snprintf(buf, sizeof buf, "fault t=%lld %s %s %s sev=%.17g n=%d\n",
                    static_cast<long long>(r.at), fault::FaultTypeName(r.type),
                    fault::FaultActionName(r.action), r.service.c_str(),
                    r.severity, r.count);
      out += buf;
    }
  }
  return out;
}

/// Average completions per metrics window over [from_s, to_s).
double CompletedRate(const sim::Application& app, double from_s, double to_s) {
  double sum = 0.0;
  int windows = 0;
  for (const auto& snap : app.metrics().Timeline()) {
    if (snap.t_end_s > from_s && snap.t_end_s <= to_s) {
      sum += static_cast<double>(snap.apis[0].completed);
      ++windows;
    }
  }
  return windows > 0 ? sum / windows : 0.0;
}

double GoodRate(const sim::Application& app, double from_s, double to_s) {
  double sum = 0.0;
  int windows = 0;
  for (const auto& snap : app.metrics().Timeline()) {
    if (snap.t_end_s > from_s && snap.t_end_s <= to_s) {
      sum += static_cast<double>(snap.apis[0].good);
      ++windows;
    }
  }
  return windows > 0 ? sum / windows : 0.0;
}

// --- No-perturbation contract ------------------------------------------------

TEST(FaultInjectorTest, EmptyScheduleLeavesRunByteIdentical) {
  auto baseline = MakeTwoTierApp();
  DrivePeriodic(*baseline, Millis(5), Seconds(5));
  baseline->RunFor(Seconds(6));

  auto injected = MakeTwoTierApp();
  fault::FaultInjector injector(injected.get(), fault::FaultSchedule{});
  injector.Arm();
  DrivePeriodic(*injected, Millis(5), Seconds(5));
  injected->RunFor(Seconds(6));

  EXPECT_EQ(Digest(*baseline), Digest(*injected));
  EXPECT_EQ(injector.InjectionCount(), 0);
}

TEST(FaultInjectorTest, EventsBeyondHorizonDoNotPerturb) {
  auto baseline = MakeTwoTierApp();
  DrivePeriodic(*baseline, Millis(5), Seconds(5));
  baseline->RunFor(Seconds(6));

  auto injected = MakeTwoTierApp();
  fault::FaultSchedule schedule;
  schedule.CrashPods("back", Seconds(100), 2)
      .ErrorBurst("front", Seconds(200), Seconds(10), 0.5);
  fault::FaultInjector injector(injected.get(), schedule);
  injector.Arm();
  DrivePeriodic(*injected, Millis(5), Seconds(5));
  injected->RunFor(Seconds(6));

  EXPECT_EQ(Digest(*baseline), Digest(*injected));
  EXPECT_TRUE(injector.Log().empty());
}

// --- Pod crash + staggered restart -------------------------------------------

TEST(FaultInjectorTest, CrashThenStaggeredRestartRebuildsPodCount) {
  auto app = MakeTwoTierApp();
  fault::FaultSchedule schedule;
  schedule.CrashPods("back", Seconds(2), /*pods=*/3,
                     /*restart_delay=*/Seconds(3), /*restart_stagger=*/Seconds(1));
  fault::FaultInjector injector(app.get(), schedule);
  injector.Arm();
  DrivePeriodic(*app, Millis(10), Seconds(9));

  std::vector<int> pods_at;  // probes at 2.5, 5.5, 6.5, 7.5 s
  for (const double t : {2.5, 5.5, 6.5, 7.5}) {
    app->sim().ScheduleAt(static_cast<SimTime>(t * 1e6), [&app, &pods_at]() {
      pods_at.push_back(app->service(kBack).RunningPods());
    });
  }
  app->RunFor(Seconds(10));

  // 4 -> 1 at t=2; restarts at t=5, 6, 7 rebuild to 4.
  ASSERT_EQ(pods_at.size(), 4u);
  EXPECT_EQ(pods_at[0], 1);
  EXPECT_EQ(pods_at[1], 2);
  EXPECT_EQ(pods_at[2], 3);
  EXPECT_EQ(pods_at[3], 4);
  EXPECT_EQ(app->service(kBack).DesiredPods(), 4);

  ASSERT_EQ(injector.Log().size(), 4u);  // 1 apply + 3 restarts
  EXPECT_EQ(injector.Log()[0].action, fault::FaultRecord::Action::kApply);
  EXPECT_EQ(injector.Log()[0].count, 3);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(injector.Log()[i].action, fault::FaultRecord::Action::kRestart);
    EXPECT_EQ(injector.Log()[i].count, 1);
  }
  EXPECT_EQ(injector.InjectionCount(), 4);
}

// --- Capacity degradation ----------------------------------------------------

TEST(FaultInjectorTest, CapacityDegradeCapsThroughputAndSaturatesUtilization) {
  // back: 4 pods x 4 threads / 10 ms = 1600 rps capacity; at factor 0.25
  // each pod keeps 1 effective thread -> 400 rps. Offered 800 rps.
  auto app = MakeTwoTierApp();
  fault::FaultSchedule schedule;
  schedule.DegradeCapacity("back", Seconds(3), Seconds(4), 0.25);
  fault::FaultInjector injector(app.get(), schedule);
  injector.Arm();
  DrivePeriodic(*app, SimTime{1250}, Seconds(11));  // 800 rps
  app->RunFor(Seconds(12));

  const double before = CompletedRate(*app, 1, 3);
  const double during = CompletedRate(*app, 4, 7);
  const double after = CompletedRate(*app, 9, 11);  // backlog drained by t=9
  EXPECT_GT(before, 700.0);
  EXPECT_LT(during, 500.0);   // capped near 400 rps
  EXPECT_GT(after, 700.0);    // revert restores capacity

  // The degraded service must read as saturated to any observer (the
  // utilization denominator is effective threads, not configured threads).
  double max_util_during = 0.0;
  for (const auto& snap : app->metrics().Timeline()) {
    if (snap.t_end_s > 4 && snap.t_end_s <= 7) {
      max_util_during = std::max(max_util_during,
                                 snap.services[kBack].cpu_utilization);
    }
  }
  EXPECT_GT(max_util_during, 0.95);
  EXPECT_DOUBLE_EQ(app->service(kBack).CapacityFactor(), 1.0);  // reverted
}

// --- Service-time inflation --------------------------------------------------

TEST(FaultInjectorTest, ServiceTimeInflationRaisesLatency) {
  auto app = MakeTwoTierApp();
  fault::FaultSchedule schedule;
  schedule.InflateServiceTime("back", Seconds(3), Seconds(3), 3.0);
  fault::FaultInjector injector(app.get(), schedule);
  injector.Arm();
  DrivePeriodic(*app, Millis(10), Seconds(9));  // light load: no queueing
  app->RunFor(Seconds(10));

  auto p50_over = [&](double from_s, double to_s) {
    double worst = 0.0;
    for (const auto& snap : app->metrics().Timeline()) {
      if (snap.t_end_s > from_s && snap.t_end_s <= to_s) {
        worst = std::max(worst, snap.apis[0].latency_p50_ms);
      }
    }
    return worst;
  };
  const double before = p50_over(1, 3);
  const double during = p50_over(4, 6);
  const double after = p50_over(8, 10);
  EXPECT_GT(during, 2.0 * before);  // ~+2x the back tier's 10 ms share
  EXPECT_LT(after, 1.5 * before);   // revert restores the baseline
  EXPECT_DOUBLE_EQ(app->service(kBack).ServiceTimeFactor(), 1.0);
}

// --- Blackhole + hop timeout -------------------------------------------------

TEST(FaultInjectorTest, BlackholeTimesOutThenRecovers) {
  auto app = MakeTwoTierApp();
  app->ConfigureRpc(Millis(50), /*max_retries=*/0, /*retry_backoff=*/0);
  fault::FaultSchedule schedule;
  schedule.Blackhole("back", Seconds(2), Seconds(2));
  EXPECT_TRUE(schedule.NeedsHopTimeout());
  fault::FaultInjector injector(app.get(), schedule);
  injector.Arm();
  DrivePeriodic(*app, Millis(10), Seconds(7));
  app->RunFor(Seconds(8));

  EXPECT_GT(app->service(kBack).BlackholedDispatches(), 0u);
  EXPECT_GT(app->HopTimeouts(), 0u);
  EXPECT_NEAR(GoodRate(*app, 3, 4), 0.0, 1.0);   // nothing completes inside
  EXPECT_GT(GoodRate(*app, 4, 7), 90.0);          // full recovery after revert
  EXPECT_FALSE(app->service(kBack).Blackholed());
  EXPECT_EQ(app->Inflight(), 0);  // timeouts drained every in-flight request
}

// --- Error bursts and bounded retries ----------------------------------------

TEST(FaultInjectorTest, ErrorBurstShedsAndRetriesRecoverGoodput) {
  auto run = [](int max_retries) {
    auto app = MakeTwoTierApp();
    app->ConfigureRpc(/*hop_timeout=*/0, max_retries, /*retry_backoff=*/Millis(1));
    fault::FaultSchedule schedule;
    schedule.ErrorBurst("back", Seconds(2), Seconds(4), 0.5);
    fault::FaultInjector injector(app.get(), schedule);
    injector.Arm();
    DrivePeriodic(*app, Millis(10), Seconds(7));
    app->RunFor(Seconds(8));
    EXPECT_GT(app->service(kBack).InjectedErrors(), 0u);
    EXPECT_DOUBLE_EQ(app->service(kBack).ErrorRate(), 0.0);  // reverted
    return std::make_pair(GoodRate(*app, 3, 6), app->Retries());
  };
  const auto [no_retry_good, no_retry_count] = run(0);
  const auto [retry_good, retry_count] = run(2);
  EXPECT_EQ(no_retry_count, 0u);
  EXPECT_GT(retry_count, 0u);
  // p=0.5 drops ~half without retries; two retries push survival to ~87%.
  EXPECT_LT(no_retry_good, 65.0);
  EXPECT_GT(retry_good, 80.0);
  EXPECT_GT(retry_good, no_retry_good * 1.3);
}

TEST(FaultInjectorTest, RetriesAreBoundedPerHop) {
  auto app = MakeTwoTierApp();
  app->ConfigureRpc(/*hop_timeout=*/0, /*max_retries=*/2, /*retry_backoff=*/0);
  fault::FaultSchedule schedule;
  schedule.ErrorBurst("back", 0, /*duration=*/0, 1.0);  // permanent, fails all
  fault::FaultInjector injector(app.get(), schedule);
  injector.Arm();
  int submitted = 0;
  app->sim().SchedulePeriodic(Millis(10), Millis(10), [&]() {
    if (app->sim().Now() <= Seconds(2)) {
      app->Submit(0);
      ++submitted;
    }
  });
  app->RunFor(Seconds(3));

  EXPECT_GT(submitted, 0);
  // Every request reaches the back hop once and retries exactly twice.
  EXPECT_EQ(app->Retries(), static_cast<std::uint64_t>(submitted) * 2);
  EXPECT_NEAR(GoodRate(*app, 0, 3), 0.0, 0.01);
}

// --- VM outage (autoscale cluster) -------------------------------------------

TEST(FaultInjectorTest, VmOutageCordonsAttachedCluster) {
  auto app = MakeTwoTierApp();
  autoscale::ClusterConfig config;
  config.initial_vms = 3;
  config.vcpus_per_vm = 8.0;
  autoscale::Cluster cluster(&app->sim(), config);

  fault::FaultSchedule schedule;
  schedule.VmOutage(Seconds(1), Seconds(2), /*vms=*/2);
  fault::FaultInjector injector(app.get(), schedule);
  injector.AttachCluster(&cluster);
  injector.Arm();

  std::vector<double> ready;
  for (const double t : {1.5, 4.5}) {
    app->sim().ScheduleAt(static_cast<SimTime>(t * 1e6), [&cluster, &ready]() {
      ready.push_back(cluster.ReadyVcpus());
    });
  }
  app->RunFor(Seconds(5));

  ASSERT_EQ(ready.size(), 2u);
  EXPECT_DOUBLE_EQ(ready[0], 8.0);   // 2 of 3 VMs cordoned
  EXPECT_DOUBLE_EQ(ready[1], 24.0);  // uncordoned on revert
  EXPECT_EQ(cluster.CordonedVms(), 0);
}

TEST(FaultInjectorTest, VmOutageWithoutClusterIsSkipped) {
  auto app = MakeTwoTierApp();
  fault::FaultSchedule schedule;
  schedule.VmOutage(Seconds(1), Seconds(1), 1);
  fault::FaultInjector injector(app.get(), schedule);
  injector.Arm();
  app->RunFor(Seconds(3));
  ASSERT_EQ(injector.Log().size(), 1u);
  EXPECT_EQ(injector.Log()[0].action, fault::FaultRecord::Action::kSkipped);
  EXPECT_EQ(injector.InjectionCount(), 0);
}

TEST(FaultInjectorTest, UnknownServiceIsSkippedNotFatal) {
  auto app = MakeTwoTierApp();
  fault::FaultSchedule schedule;
  schedule.CrashPods("no-such-service", Seconds(1), 1);
  fault::FaultInjector injector(app.get(), schedule);
  injector.Arm();
  app->RunFor(Seconds(2));
  ASSERT_EQ(injector.Log().size(), 1u);
  EXPECT_EQ(injector.Log()[0].action, fault::FaultRecord::Action::kSkipped);
}

// --- Acceptance: byte-identical across pool sizes and tracing on/off ---------

exp::RunSpec FixtureSpec() {
  exp::RunSpec spec;
  spec.label = "fixture";
  spec.duration_s = 10.0;
  spec.make_app = []() {
    auto app = MakeTwoTierApp(/*seed=*/21);
    app->ConfigureRpc(Millis(100), /*max_retries=*/1, Millis(5));
    return app;
  };
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application&) {
    traffic.AddOpenLoop(0, workload::Schedule::Constant(500));
  };
  spec.faults.CrashPods("back", Seconds(2), 2, Seconds(3), Seconds(1))
      .DegradeCapacity("front", Seconds(4), Seconds(2), 0.5)
      .ErrorBurst("back", Seconds(6), Seconds(2), 0.3)
      .Blackhole("back", Seconds(8), Millis(500));
  return spec;
}

TEST(FaultDeterminismTest, ByteIdenticalAcrossThreadPoolSizes) {
  // Same fixed fault profile run three times per pool; TOPFULL_THREADS in
  // {1, 4} is modelled by explicit pools of those sizes.
  const std::vector<exp::RunSpec> specs(3, FixtureSpec());
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const auto serial = exp::RunExecutor(&pool1).Execute(specs);
  const auto parallel = exp::RunExecutor(&pool4).Execute(specs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].fault_log.empty());
    EXPECT_EQ(Digest(*serial[i].app, &serial[i].fault_log),
              Digest(*parallel[i].app, &parallel[i].fault_log))
        << "run " << i;
  }
  // All three runs of the identical spec agree with each other too.
  EXPECT_EQ(Digest(*serial[0].app, &serial[0].fault_log),
            Digest(*serial[2].app, &serial[2].fault_log));
}

TEST(FaultDeterminismTest, ByteIdenticalWithTracingOnAndOff) {
  auto run = [](bool traced) {
    const exp::RunSpec spec = FixtureSpec();
    auto app = spec.make_app();
    obs::RequestTracer tracer;  // sample_rate = 1: trace everything
    if (traced) app->SetObserver(&tracer);
    fault::FaultInjector injector(app.get(), spec.faults, spec.fault_seed);
    injector.Arm();
    workload::TrafficDriver traffic(app.get());
    spec.traffic(traffic, *app);
    app->RunFor(Seconds(spec.duration_s));
    const std::uint64_t sampled = tracer.counters().sampled;
    return std::make_pair(Digest(*app, &injector.Log()), sampled);
  };
  const auto [off_digest, off_sampled] = run(false);
  const auto [on_digest, on_sampled] = run(true);
  EXPECT_EQ(off_sampled, 0u);
  EXPECT_GT(on_sampled, 0u);  // the tracer really observed the run
  EXPECT_EQ(off_digest, on_digest);
}

// --- Profile parser ----------------------------------------------------------

TEST(FaultProfileTest, ParsesEveryKind) {
  auto app = MakeTwoTierApp();
  std::string error;
  const auto schedule = fault::ParseFaultProfile(
      "crash:svc=back,at=50,pods=3,restart=60,stagger=1;"
      "degrade:svc=front,at=30,for=40,factor=0.5;"
      "inflate:svc=back,at=30,for=40,factor=2.5;"
      "blackhole:svc=back,at=20,for=10;"
      "errors:svc=front,at=20,for=15,p=0.3;"
      "vmout:at=40,for=30,vms=2",
      *app, &error);
  ASSERT_TRUE(schedule.has_value()) << error;
  ASSERT_EQ(schedule->size(), 6u);
  const auto& events = schedule->events();
  EXPECT_EQ(events[0].type, fault::FaultType::kPodCrash);
  EXPECT_EQ(events[0].service, "back");
  EXPECT_EQ(events[0].at, Seconds(50));
  EXPECT_EQ(events[0].pods, 3);
  EXPECT_EQ(events[0].restart_delay, Seconds(60));
  EXPECT_EQ(events[0].restart_stagger, Seconds(1));
  EXPECT_EQ(events[1].type, fault::FaultType::kCapacityDegrade);
  EXPECT_DOUBLE_EQ(events[1].severity, 0.5);
  EXPECT_EQ(events[1].duration, Seconds(40));
  EXPECT_EQ(events[2].type, fault::FaultType::kServiceTimeInflate);
  EXPECT_EQ(events[3].type, fault::FaultType::kBlackhole);
  EXPECT_EQ(events[4].type, fault::FaultType::kErrorBurst);
  EXPECT_DOUBLE_EQ(events[4].severity, 0.3);
  EXPECT_EQ(events[5].type, fault::FaultType::kVmOutage);
  EXPECT_EQ(events[5].pods, 2);
}

TEST(FaultProfileTest, ExpandsChaosProfiles) {
  auto app = MakeTwoTierApp();
  std::string error;
  const auto schedule =
      fault::ParseFaultProfile("chaos:seed=7,events=5,horizon=60", *app, &error);
  ASSERT_TRUE(schedule.has_value()) << error;
  EXPECT_EQ(schedule->size(), 5u);
}

TEST(FaultProfileTest, RejectsMalformedSpecs) {
  auto app = MakeTwoTierApp();
  for (const char* bad : {
           "explode:svc=back,at=1",          // unknown kind
           "crash:svc=nosuch,at=1",          // unknown service
           "crash:svc=back,at=",             // missing value
           "crash:svc=back,when=1",          // unknown key
           "degrade:svc=back,at=1,factor=x", // non-numeric
       }) {
    std::string error;
    EXPECT_FALSE(fault::ParseFaultProfile(bad, *app, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// --- Chaos schedules ---------------------------------------------------------

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  auto app = MakeTwoTierApp();
  fault::ChaosOptions options;
  options.seed = 42;
  options.events = 6;
  const auto a = fault::MakeChaosSchedule(*app, options);
  const auto b = fault::MakeChaosSchedule(*app, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].type, b.events()[i].type);
    EXPECT_EQ(a.events()[i].service, b.events()[i].service);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
    EXPECT_EQ(a.events()[i].pods, b.events()[i].pods);
    EXPECT_DOUBLE_EQ(a.events()[i].severity, b.events()[i].severity);
  }
  options.seed = 43;
  const auto c = fault::MakeChaosSchedule(*app, options);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].type != c.events()[i].type ||
              a.events()[i].at != c.events()[i].at ||
              a.events()[i].service != c.events()[i].service;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosScheduleTest, EventsRespectOptionBounds) {
  auto app = MakeTwoTierApp();
  fault::ChaosOptions options;
  options.seed = 9;
  options.events = 12;
  options.start_s = 10.0;
  options.horizon_s = 100.0;
  const auto schedule = fault::MakeChaosSchedule(*app, options);
  ASSERT_EQ(schedule.size(), 12u);
  SimTime prev = 0;
  for (const auto& e : schedule.events()) {
    EXPECT_NE(e.type, fault::FaultType::kBlackhole);  // opt-in only
    EXPECT_GE(e.at, Seconds(10));
    EXPECT_LE(e.at, Seconds(80));  // start .. 0.8 x horizon
    EXPECT_GE(e.at, prev);         // sorted by injection time
    prev = e.at;
    switch (e.type) {
      case fault::FaultType::kCapacityDegrade:
        EXPECT_GE(e.severity, 0.2);
        EXPECT_LE(e.severity, 0.8);
        break;
      case fault::FaultType::kServiceTimeInflate:
        EXPECT_GE(e.severity, 1.5);
        EXPECT_LE(e.severity, 4.0);
        break;
      case fault::FaultType::kErrorBurst:
        EXPECT_GE(e.severity, 0.1);
        EXPECT_LE(e.severity, 0.5);
        break;
      case fault::FaultType::kPodCrash:
        EXPECT_GE(e.pods, 1);
        break;
      default:
        break;
    }
  }
}

}  // namespace
}  // namespace topfull

// Integration tests: full-stack scenarios across modules (apps + workload +
// controllers + autoscaler). These are miniature versions of the bench
// experiments with assertions instead of tables.
#include <gtest/gtest.h>

#include "apps/alibaba_demo.hpp"
#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "autoscale/hpa.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

namespace topfull {
namespace {

double RunBoutique(exp::Variant variant, const rl::GaussianPolicy* policy,
                   int users, double duration_s, std::uint64_t seed = 101) {
  apps::BoutiqueOptions options;
  options.seed = seed;
  auto app = apps::MakeOnlineBoutique(options);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Constant(users));
  app->RunFor(Seconds(duration_s));
  return exp::TotalGoodput(*app, duration_s * 0.3, duration_s);
}

TEST(IntegrationTest, MimdControlBeatsNoControlUnderOverload) {
  // The full entry-control loop (with the deterministic MIMD controller, so
  // no trained model is needed) versus no control at all.
  const double none = RunBoutique(exp::Variant::kNoControl, nullptr, 4200, 90);
  const double mimd = RunBoutique(exp::Variant::kTopFullMimd, nullptr, 4200, 90);
  EXPECT_GT(mimd, 1.3 * none);
}

TEST(IntegrationTest, DagorControlBeatsNoControlUnderOverload) {
  const double none = RunBoutique(exp::Variant::kNoControl, nullptr, 4200, 90);
  const double dagor = RunBoutique(exp::Variant::kDagor, nullptr, 4200, 90);
  EXPECT_GT(dagor, 1.3 * none);
}

TEST(IntegrationTest, BreakwaterControlBeatsNoControlUnderOverload) {
  const double none = RunBoutique(exp::Variant::kNoControl, nullptr, 4200, 90);
  const double bw = RunBoutique(exp::Variant::kBreakwater, nullptr, 4200, 90);
  EXPECT_GT(bw, 1.3 * none);
}

TEST(IntegrationTest, LightLoadIsUntouchedByEveryVariant) {
  // At 15 % utilisation no controller should shed anything material.
  for (const auto variant :
       {exp::Variant::kNoControl, exp::Variant::kTopFullMimd, exp::Variant::kDagor,
        exp::Variant::kBreakwater, exp::Variant::kTopFullBw}) {
    const double goodput = RunBoutique(variant, nullptr, 400, 60);
    EXPECT_NEAR(goodput, 400.0, 60.0) << exp::VariantName(variant);
  }
}

TEST(IntegrationTest, FullStackDeterminism) {
  const double a = RunBoutique(exp::Variant::kTopFullMimd, nullptr, 3000, 60, 7);
  const double b = RunBoutique(exp::Variant::kTopFullMimd, nullptr, 3000, 60, 7);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = RunBoutique(exp::Variant::kTopFullMimd, nullptr, 3000, 60, 8);
  EXPECT_NE(a, c);  // different seed, different sample path
}

TEST(IntegrationTest, TrainTicketSurgeWithHpaScalesAndRecovers) {
  apps::TrainTicketOptions options;
  options.seed = 103;
  auto app = apps::MakeTrainTicket(options);
  autoscale::Cluster cluster(&app->sim(), {});
  autoscale::HorizontalPodAutoscaler hpa(app.get(), &cluster, {});
  hpa.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Constant(600).Then(Seconds(30), 2600));
  const int travel_before =
      app->service(app->FindService("ts-travel")).RunningPods();
  app->RunFor(Seconds(200));
  EXPECT_GT(app->service(app->FindService("ts-travel")).RunningPods(), travel_before);
  // Fully scaled: goodput approaches the offered demand.
  EXPECT_GT(exp::TotalGoodput(*app, 150, 200), 2200.0);
}

TEST(IntegrationTest, PodFailureCollapsesStationApisWithoutControl) {
  // 460 rps/API is fine with 35 station pods; once 25 die, the station
  // arrivals (~2300/s at half work) exceed the survivors' ~1660/s.
  apps::TrainTicketOptions options;
  options.seed = 107;
  auto app = apps::MakeTrainTicket(options);
  workload::TrafficDriver traffic(app.get());
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    traffic.AddOpenLoop(a, workload::Schedule::Constant(460));
  }
  const sim::ServiceId station = app->FindService("ts-station");
  app->RunFor(Seconds(30));
  const double before = exp::TotalGoodput(*app, 15, 30);
  EXPECT_GT(before, 1500.0);  // mostly-healthy baseline (offered = 2760)
  app->service(station).KillPods(25);
  app->RunFor(Seconds(45));
  const double during = exp::TotalGoodput(*app, 45, 75);
  EXPECT_LT(during, 0.85 * before);  // station-crossing APIs degrade
  // Recovery restores goodput.
  app->service(station).SetPodCount(35, Seconds(1));
  app->RunFor(Seconds(40));
  EXPECT_GT(exp::TotalGoodput(*app, 95, 115), 0.85 * before);
}

TEST(IntegrationTest, MimdEntryControlHoldsGoodputThroughPodFailure) {
  apps::TrainTicketOptions options;
  options.seed = 107;
  auto app = apps::MakeTrainTicket(options);
  exp::Controllers controllers;
  controllers.Attach(exp::Variant::kTopFullMimd, *app, nullptr);
  workload::TrafficDriver traffic(app.get());
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    traffic.AddOpenLoop(a, workload::Schedule::Constant(430));
  }
  const sim::ServiceId station = app->FindService("ts-station");
  app->sim().ScheduleAt(Seconds(20), [&app, station]() {
    app->service(station).KillPods(25);
  });
  app->RunFor(Seconds(80));
  // 10 station pods sustain ~830 work-units/s; the controller should keep a
  // healthy share of total goodput flowing (vs near-collapse uncontrolled).
  EXPECT_GT(exp::TotalGoodput(*app, 50, 80), 1200.0);
}

TEST(IntegrationTest, AlibabaDemoRunsUnderControlAtScale) {
  // 127 services, 25 APIs: smoke the full pipeline (clustering over many
  // hot services, parallel decisions) and check improvement vs no control.
  apps::AlibabaDemoOptions options;
  auto run = [&](bool control) {
    auto demo = apps::MakeAlibabaDemo(options);
    exp::Controllers controllers;
    if (control) {
      controllers.Attach(exp::Variant::kTopFullMimd, *demo.app, nullptr);
    }
    workload::TrafficDriver traffic(demo.app.get());
    traffic.AddClosedLoop(exp::UniformUsers(*demo.app),
                          workload::Schedule::Constant(6000));
    demo.app->RunFor(Seconds(60));
    return exp::TotalGoodput(*demo.app, 25, 60);
  };
  const double none = run(false);
  const double controlled = run(true);
  EXPECT_GT(controlled, 1.15 * none);
  EXPECT_GT(controlled, 1000.0);
}

TEST(IntegrationTest, SequentialAblationStillControlsEventually) {
  apps::BoutiqueOptions options;
  options.seed = 113;
  auto app = apps::MakeOnlineBoutique(options);
  core::TopFullConfig config;
  config.enable_clustering = false;
  core::TopFullController controller(
      app.get(), std::make_unique<core::MimdRateController>(0.1, 0.02), config);
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app), workload::Schedule::Constant(4200));
  app->RunFor(Seconds(120));
  // Slower than parallel control, but all implicated APIs end up capped.
  int capped = 0;
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    capped += controller.RateLimit(a).has_value() ? 1 : 0;
  }
  EXPECT_GE(capped, 3);
  EXPECT_GT(exp::TotalGoodput(*app, 60, 120), 1200.0);
}

}  // namespace
}  // namespace topfull

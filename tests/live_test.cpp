// Tests for the live telemetry plane: the HTTP request parser and server,
// immutable metric snapshots and their renderers, the LivePlane publisher,
// and the observer contract (live publishing must never change results).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/harness.hpp"
#include "exp/run_executor.hpp"
#include "exp/sharded_run.hpp"
#include "obs/export.hpp"
#include "obs/http_server.hpp"
#include "obs/json.hpp"
#include "obs/live.hpp"
#include "obs/profile.hpp"
#include "obs/rules.hpp"
#include "obs/snapshot.hpp"
#include "obs/tsdb_plane.hpp"
#include "workload/generators.hpp"

namespace topfull {
namespace {

// --- Request parsing ---------------------------------------------------------

TEST(HttpParseTest, ParsesACompleteRequestHead) {
  obs::HttpRequest request;
  std::size_t consumed = 0;
  const std::string head =
      "GET /metrics?x=1 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
  ASSERT_EQ(obs::ParseHttpRequest(head + "extra", &request, &consumed),
            obs::HttpParse::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics?x=1");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(consumed, head.size());
  ASSERT_EQ(request.headers.size(), 2u);
  EXPECT_EQ(request.headers[0].first, "Host");
  EXPECT_EQ(request.headers[0].second, "localhost");
}

TEST(HttpParseTest, ToleratesBareLfLineEndings) {
  obs::HttpRequest request;
  EXPECT_EQ(obs::ParseHttpRequest("GET / HTTP/1.0\nHost: x\n\n", &request),
            obs::HttpParse::kOk);
  EXPECT_EQ(request.target, "/");
}

TEST(HttpParseTest, IncompleteUntilTheBlankLine) {
  obs::HttpRequest request;
  EXPECT_EQ(obs::ParseHttpRequest("GET / HTTP/1.1\r\nHost:", &request),
            obs::HttpParse::kIncomplete);
  EXPECT_EQ(obs::ParseHttpRequest("GET", &request), obs::HttpParse::kIncomplete);
  EXPECT_EQ(obs::ParseHttpRequest("", &request), obs::HttpParse::kIncomplete);
}

TEST(HttpParseTest, RejectsMalformedRequestLines) {
  obs::HttpRequest request;
  const char* bad[] = {
      "garbage\r\n\r\n",
      "get / HTTP/1.1\r\n\r\n",        // lowercase method
      "GET  / HTTP/1.1\r\n\r\n",       // double space
      "GET metrics HTTP/1.1\r\n\r\n",  // target must start with '/'
      "GET / FTP/1.1\r\n\r\n",         // not an HTTP version
      "GET /\r\n\r\n",                 // missing version
  };
  for (const char* input : bad) {
    EXPECT_EQ(obs::ParseHttpRequest(input, &request), obs::HttpParse::kBad)
        << input;
  }
}

TEST(HttpParseTest, SerializeCarriesStatusHeadersAndLength) {
  obs::HttpResponse response;
  response.status = 405;
  response.body = "nope\n";
  response.headers.push_back({"Allow", "GET"});
  const std::string wire = obs::SerializeHttpResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 405 Method Not Allowed\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Allow: GET\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "nope\n");
}

// --- Server behavior over real sockets ---------------------------------------

/// Connects to 127.0.0.1:`port`, sends `request` in `parts` pieces with a
/// small pause between them, and returns everything read until EOF.
std::string RawRequest(int port, const std::string& request, int parts = 1) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::size_t piece = request.size() / static_cast<std::size_t>(parts) + 1;
  for (std::size_t at = 0; at < request.size(); at += piece) {
    const std::size_t n = std::min(piece, request.size() - at);
    if (::send(fd, request.data() + at, n, 0) != static_cast<ssize_t>(n)) {
      ::close(fd);
      return "";
    }
    if (parts > 1) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::string out;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return out;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<obs::HttpServer>([](const obs::HttpRequest& r) {
      obs::HttpResponse response;
      if (r.target == "/hello") {
        response.body = "hi\n";
      } else {
        response.status = 404;
        response.body = "not found\n";
      }
      return response;
    });
    std::string error;
    ASSERT_TRUE(server_->Start(0, &error)) << error;
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<obs::HttpServer> server_;
};

TEST_F(HttpServerTest, ServesAndCounts) {
  const std::string reply =
      RawRequest(server_->port(), "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(reply.substr(reply.size() - 3), "hi\n");
  EXPECT_GE(server_->requests_served(), 1u);
}

TEST_F(HttpServerTest, UnknownTargetIs404) {
  const std::string reply =
      RawRequest(server_->port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

TEST_F(HttpServerTest, NonGetIs405WithAllowHeader) {
  const std::string reply = RawRequest(
      server_->port(), "POST /hello HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(reply.find("Allow: GET"), std::string::npos);
}

TEST_F(HttpServerTest, PartialSendsStillParse) {
  const std::string reply = RawRequest(
      server_->port(), "GET /hello HTTP/1.1\r\nHost: split\r\n\r\n", 4);
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST_F(HttpServerTest, GarbageIs400) {
  const std::string reply =
      RawRequest(server_->port(), "THIS IS NOT HTTP AT ALL\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 400 Bad Request"), std::string::npos);
}

TEST_F(HttpServerTest, StopIsIdempotentAndJoins) {
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

// --- Snapshots ---------------------------------------------------------------

TEST(SnapshotTest, BuilderSortsFamiliesAndCells) {
  obs::SnapshotBuilder builder;
  builder.AddGauge("zzz_gauge", "z.", {}, 3.0);
  builder.AddCounter("aaa_total", "a.", {{"api", "b"}}, 2);
  builder.AddCounter("aaa_total", "a.", {{"api", "a"}}, 1);
  builder.AddCounter("aaa_total", "a.", {{"api", "a"}}, 7);  // overwrite
  const auto snapshot = builder.Finish();
  ASSERT_EQ(snapshot->families.size(), 2u);
  EXPECT_EQ(snapshot->families[0].name, "aaa_total");
  EXPECT_EQ(snapshot->families[1].name, "zzz_gauge");
  ASSERT_EQ(snapshot->families[0].cells.size(), 2u);
  EXPECT_EQ(snapshot->families[0].cells[0].labels[0].second, "a");
  EXPECT_EQ(snapshot->families[0].cells[0].counter, 7u);
  const auto* cell = snapshot->FindCell("aaa_total", {{"api", "b"}});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->counter, 2u);
  EXPECT_EQ(snapshot->FindFamily("nope"), nullptr);
}

TEST(SnapshotTest, BoardStartsEmptyAndKeepsOldSnapshotsAlive) {
  obs::SnapshotBoard board;
  const auto empty = board.Read();
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(empty->families.empty());

  obs::SnapshotBuilder builder;
  builder.AddCounter("x_total", "x.", {}, 1);
  board.Publish(builder.Finish({}, 1));
  const auto first = board.Read();
  ASSERT_EQ(first->version, 1u);

  obs::SnapshotBuilder builder2;
  builder2.AddCounter("x_total", "x.", {}, 2);
  board.Publish(builder2.Finish({}, 2));
  // The old snapshot a reader holds stays valid after the swap.
  EXPECT_EQ(first->version, 1u);
  ASSERT_EQ(first->families.size(), 1u);
  EXPECT_EQ(first->families[0].cells[0].counter, 1u);
  EXPECT_EQ(board.Read()->version, 2u);
}

TEST(SnapshotTest, RegistryAndSnapshotRenderingsAgree) {
  obs::MetricsRegistry registry;
  registry.GetCounter("live_requests_total", "Requests.", {{"api", "a"}})->Inc(3);
  registry.GetGauge("live_depth", "Depth.", {})->Set(2.5);
  auto* histogram = registry.GetHistogram("live_latency_ms", "Latency.", {},
                                          obs::HistogramConfig{0.1, 1e4, 8});
  histogram->Record(1.0);
  histogram->Record(50.0);

  const std::string direct = obs::PromTextFromRegistry(registry);
  obs::SnapshotBuilder builder;
  builder.AddRegistry(registry);
  const std::string via_snapshot =
      obs::PromTextFromSnapshot(*builder.Finish());
  EXPECT_EQ(direct, via_snapshot);
  std::string error;
  EXPECT_TRUE(obs::ValidatePromText(direct, &error)) << error;
  EXPECT_NE(direct.find("live_latency_ms_bucket"), std::string::npos);
}

TEST(SnapshotTest, ExtraLabelsAppendToEveryCell) {
  obs::MetricsRegistry registry;
  registry.GetCounter("s_total", "S.", {{"api", "a"}})->Inc(1);
  obs::SnapshotBuilder builder;
  builder.AddRegistry(registry, {{"shard", "3"}});
  const auto snapshot = builder.Finish();
  const auto* cell =
      snapshot->FindCell("s_total", {{"api", "a"}, {"shard", "3"}});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->counter, 1u);
}

TEST(SnapshotTest, JsonRenderersProduceParsableJson) {
  obs::SnapshotBuilder builder;
  builder.AddCounter("j_total", "J \"quoted\".", {{"api", "x\n"}}, 5);
  obs::RunState run;
  run.label = "json-run";
  run.sim_time_s = 1.5;
  run.duration_s = 3.0;
  run.shards.resize(2);
  const auto snapshot = builder.Finish(std::move(run), 9);

  for (const std::string& text :
       {obs::SnapshotJson(*snapshot), obs::RunStateJson(*snapshot)}) {
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::ParseJson(text, &doc, &error)) << error << "\n" << text;
  }
  EXPECT_NE(obs::RunStateJson(*snapshot).find("\"label\":\"json-run\""),
            std::string::npos);
}

TEST(SnapshotTest, ValidatePromTextRejectsMalformedExpositions) {
  std::string error;
  EXPECT_FALSE(obs::ValidatePromText("x_total 1\n", &error));  // no # TYPE
  EXPECT_NE(error.find("without preceding # TYPE"), std::string::npos);
  EXPECT_FALSE(obs::ValidatePromText(
      "# TYPE x_total counter\nx_total{api=\"a\" 1\n", nullptr));
  EXPECT_FALSE(obs::ValidatePromText(
      "# TYPE x_total counter\nx_total one\n", nullptr));
  EXPECT_FALSE(obs::ValidatePromText("# TYPE x_total banana\n", nullptr));
  EXPECT_TRUE(obs::ValidatePromText(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
      &error))
      << error;
}

TEST(SnapshotTest, CountsActiveSloEvents) {
  using obs::SloEvent;
  using obs::SloEventType;
  std::vector<SloEvent> events;
  events.push_back({1.0, SloEventType::kOverloadOnset, "svc-a", 0, 0});
  events.push_back({2.0, SloEventType::kOverloadClear, "svc-a", 0, 0});
  events.push_back({3.0, SloEventType::kOverloadOnset, "svc-b", 0, 0});
  events.push_back({3.5, SloEventType::kSloBurnStart, "total", 0, 0});
  events.push_back({4.0, SloEventType::kOscillation, "api0", 0, 0});
  std::vector<std::string> subjects;
  EXPECT_EQ(obs::CountActiveSloEvents(events, &subjects), 2u);
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], "overload:svc-b");
  EXPECT_EQ(subjects[1], "slo_burn:total");
}

// --- Routing -----------------------------------------------------------------

TEST(RouteTest, ServesEveryEndpointFromTheBoard) {
  obs::SnapshotBoard board;
  obs::SnapshotBuilder builder;
  builder.AddCounter("r_total", "R.", {}, 4);
  obs::RunState run;
  run.label = "route-run";
  board.Publish(builder.Finish(std::move(run), 1));

  auto get = [&board](const std::string& target) {
    obs::HttpRequest request;
    request.method = "GET";
    request.target = target;
    return obs::RouteSnapshotRequest(request, board);
  };
  EXPECT_EQ(get("/healthz").body, "ok\n");
  const obs::HttpResponse metrics = get("/metrics?ignored=1");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("r_total 4"), std::string::npos);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(get("/runs").body.find("\"label\":\"route-run\""),
            std::string::npos);
  EXPECT_NE(get("/snapshot.json").body.find("\"version\":1"),
            std::string::npos);
  EXPECT_EQ(get("/").status, 200);
  EXPECT_EQ(get("/bogus").status, 404);
}

// --- Live publishing end to end ----------------------------------------------

sim::ServiceConfig Svc(const char* name, double mean_ms, int threads, int pods) {
  sim::ServiceConfig config;
  config.name = name;
  config.mean_service_ms = mean_ms;
  config.service_sigma = 0.25;
  config.threads = threads;
  config.initial_pods = pods;
  return config;
}

/// Two independent 2-service chains (two clusters, so 2 shards align).
std::unique_ptr<sim::Application> MakeLiveApp(std::uint64_t seed = 7) {
  auto app = std::make_unique<sim::Application>("live-app", seed);
  const sim::ServiceId a = app->AddService(Svc("A", 4.0, 8, 1));
  const sim::ServiceId b = app->AddService(Svc("B", 10.0, 4, 1));
  const sim::ServiceId c = app->AddService(Svc("C", 5.0, 4, 1));
  const sim::ServiceId d = app->AddService(Svc("D", 6.0, 4, 1));
  sim::ApiSpec api0("api0", 1);
  api0.AddPath(sim::ExecutionPath{sim::Chain({a, b}), 1.0, {}});
  app->AddApi(std::move(api0));
  sim::ApiSpec api1("api1", 1);
  api1.AddPath(sim::ExecutionPath{sim::Chain({c, d}), 1.0, {}});
  app->AddApi(std::move(api1));
  app->Finalize();
  return app;
}

exp::RunSpec LiveSpec(const std::string& label, double duration_s = 6.0) {
  exp::RunSpec spec;
  spec.label = label;
  spec.duration_s = duration_s;
  spec.make_app = [] { return MakeLiveApp(); };
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application&) {
    traffic.AddOpenLoop(0, workload::Schedule::Constant(500));
    traffic.AddOpenLoop(1, workload::Schedule::Constant(200));
  };
  return spec;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(LivePlaneTest, FinalSnapshotEqualsTheOfflinePrometheusDump) {
  const std::string dir = testing::TempDir() + "live_golden";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("TOPFULL_TRACE_DIR", dir.c_str(), 1), 0);

  obs::LiveOptions options;
  options.port = -1;  // publisher only, no server
  options.publish_interval_s = 0.0;
  obs::LivePlane live(options);
  exp::RunSpec spec = LiveSpec("golden");
  spec.live = &live;
  exp::RunExecutor::RunOne(spec);
  unsetenv("TOPFULL_TRACE_DIR");

  const auto snapshot = live.board().Read();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->run.finished);
  EXPECT_GE(live.publishes(), 2u);  // several chunks + the final publish

  const std::string offline = ReadFile(dir + "/golden.metrics.prom");
  ASSERT_FALSE(offline.empty());
  EXPECT_EQ(obs::PromTextFromSnapshot(*snapshot), offline)
      << "live /metrics at end of run must equal the offline dump";
  std::string error;
  EXPECT_TRUE(obs::ValidatePromText(offline, &error)) << error;
}

TEST(LivePlaneTest, PublishingIsAPureObserver) {
  // Identical spec with and without the live plane: per-API totals match.
  exp::RunResult plain = exp::RunExecutor::RunOne(LiveSpec("observer"));

  obs::LiveOptions options;
  options.port = -1;
  obs::LivePlane live(options);
  exp::RunSpec spec = LiveSpec("observer");
  spec.live = &live;
  exp::RunResult observed = exp::RunExecutor::RunOne(spec);

  const auto& a = plain.app->metrics().Totals();
  const auto& b = observed.app->metrics().Totals();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offered, b[i].offered) << "api " << i;
    EXPECT_EQ(a[i].admitted, b[i].admitted) << "api " << i;
    EXPECT_EQ(a[i].completed, b[i].completed) << "api " << i;
    EXPECT_EQ(a[i].good, b[i].good) << "api " << i;
  }
}

TEST(LivePlaneTest, ConcurrentScrapesDuringARunningSimulation) {
  obs::LiveOptions options;
  options.port = 0;
  options.publish_interval_s = 0.0;  // publish every chunk
  obs::LivePlane live(options);
  std::string error;
  ASSERT_TRUE(live.StartServer(&error)) << error;
  const int port = live.port();
  ASSERT_GT(port, 0);

  std::atomic<bool> done{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([port, &done, &bad, t] {
      const char* targets[] = {"/metrics", "/runs", "/snapshot.json"};
      while (!done.load(std::memory_order_relaxed)) {
        const std::string target = targets[t % 3];
        const std::string reply = RawRequest(
            port, "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n");
        if (reply.find("HTTP/1.1 200 OK") == std::string::npos) {
          ++bad;
          continue;
        }
        const std::string body = reply.substr(reply.find("\r\n\r\n") + 4);
        if (target == std::string("/metrics")) {
          if (!obs::ValidatePromText(body)) ++bad;
        } else {
          obs::JsonValue doc;
          std::string parse_error;
          if (!obs::ParseJson(body, &doc, &parse_error)) ++bad;
        }
      }
    });
  }

  exp::RunSpec spec = LiveSpec("scraped", /*duration_s=*/10.0);
  spec.live = &live;
  exp::RunExecutor::RunOne(spec);
  done.store(true, std::memory_order_relaxed);
  for (std::thread& thread : scrapers) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(live.publishes(), 2u);
  EXPECT_TRUE(live.board().Read()->run.finished);
}

TEST(LivePlaneTest, ShardedRunExposesSchedulerMetricsPerShard) {
  obs::LiveOptions options;
  options.port = -1;
  options.publish_interval_s = 0.0;
  obs::LivePlane live(options);
  exp::RunSpec spec = LiveSpec("sharded-live");
  spec.live = &live;
  exp::ShardedRunOptions sharded_options;
  sharded_options.shards = 2;
  sharded_options.net_latency = Millis(1);
  const exp::ShardedRunResult result =
      exp::RunShardedSpec(spec, sharded_options);

  const auto snapshot = live.board().Read();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->run.finished);
  EXPECT_GT(snapshot->run.rounds, 0u);
  ASSERT_EQ(snapshot->run.shards.size(), 2u);
  EXPECT_GT(snapshot->run.shards[0].events_processed, 0u);
  EXPECT_GT(snapshot->run.shards[1].events_processed, 0u);

  // Scheduler families exist and per-shard cells carry shard labels.
  EXPECT_NE(snapshot->FindFamily("topfull_shard_rounds_total"), nullptr);
  EXPECT_NE(snapshot->FindFamily("topfull_shard_round_wall_ms"), nullptr);
  EXPECT_NE(snapshot->FindCell("topfull_shard_busy_seconds", {{"shard", "1"}}),
            nullptr);
  EXPECT_NE(
      snapshot->FindCell("topfull_shard_messages_sent_total", {{"shard", "0"}}),
      nullptr);
  // App registries are shard-labeled too.
  bool saw_shard1_app_cell = false;
  const auto* family = snapshot->FindFamily("topfull_requests_offered_total");
  if (family == nullptr) family = snapshot->FindFamily("topfull_engine_pending_events");
  ASSERT_NE(family, nullptr);
  for (const auto& cell : family->cells) {
    for (const auto& [key, value] : cell.labels) {
      if (key == "shard" && value == "1") saw_shard1_app_cell = true;
    }
  }
  EXPECT_TRUE(saw_shard1_app_cell);

  // /runs carries the per-shard scheduler stats.
  const std::string runs = obs::RunStateJson(*snapshot);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(runs, &doc, &error)) << error;
  EXPECT_NE(runs.find("\"rounds\":"), std::string::npos);
  EXPECT_NE(runs.find("\"mailbox_depth_hwm\":"), std::string::npos);

  std::string prom_error;
  EXPECT_TRUE(obs::ValidatePromText(obs::PromTextFromSnapshot(*snapshot),
                                    &prom_error))
      << prom_error;
  (void)result;
}

TEST(LivePlaneTest, ProfilerPercentilesAppearInLiveSnapshots) {
  obs::Profiler& profiler = obs::Profiler::Global();
  profiler.Reset();
  profiler.SetEnabled(true);
  for (int i = 1; i <= 100; ++i) {
    profiler.Record("live-test/phase", 1e-3 * i);  // 1 ms .. 100 ms
  }
  const auto phases = profiler.Snapshot();
  const auto it =
      std::find_if(phases.begin(), phases.end(), [](const auto& entry) {
        return entry.first == "live-test/phase";
      });
  ASSERT_NE(it, phases.end());
  EXPECT_GT(it->second.p50_s, 0.02);
  EXPECT_LT(it->second.p50_s, 0.08);
  EXPECT_GE(it->second.p99_s, it->second.p50_s);
  EXPECT_LE(it->second.p99_s, it->second.max_s * 1.0001);

  obs::LivePlane live(obs::LiveOptions{-1, 0.0});
  live.Publish(obs::LiveSources{}, /*finished=*/true);
  const auto snapshot = live.board().Read();
  EXPECT_NE(snapshot->FindFamily("topfull_profile_p50_ms"), nullptr);
  EXPECT_NE(snapshot->FindFamily("topfull_profile_p99_ms"), nullptr);
  const auto* cell = snapshot->FindCell("topfull_profile_count",
                                        {{"phase", "live-test/phase"}});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->gauge, 100.0);
  profiler.SetEnabled(false);
  profiler.Reset();
}

// --- Time-series plane -------------------------------------------------------

TEST_F(HttpServerTest, ResponsesForbidCaching) {
  // Live telemetry is point-in-time: any response a proxy replays is a
  // stale lie, so every response carries Cache-Control: no-store.
  const std::string ok =
      RawRequest(server_->port(), "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("Cache-Control: no-store\r\n"), std::string::npos);
  const std::string missing =
      RawRequest(server_->port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("Cache-Control: no-store\r\n"), std::string::npos);
}

TEST(RouteTest, QueryAndAlertsServeJsonWhenATsdbIsWired) {
  obs::SnapshotBoard board;
  obs::TsdbPlane plane;
  plane.tsdb().Append("m", {{"api", "a"}}, obs::MetricType::kGauge, 1.0, 2.0);
  obs::AlertRule rule;
  rule.name = "m_high";
  rule.exprs = {"m > 1"};
  rule.for_s = 0.0;
  plane.rules().AddAlert(std::move(rule));
  plane.rules().Evaluate(1.0);

  auto get = [&board, &plane](const std::string& target) {
    obs::HttpRequest request;
    request.method = "GET";
    request.target = target;
    return obs::RouteSnapshotRequest(request, board, &plane);
  };
  const obs::HttpResponse query = get("/query?expr=m");
  EXPECT_EQ(query.status, 200);
  EXPECT_EQ(query.content_type, "application/json");
  EXPECT_NE(query.body.find("\"2\""), std::string::npos);

  const obs::HttpResponse alerts = get("/alerts");
  EXPECT_EQ(alerts.status, 200);
  EXPECT_EQ(alerts.content_type, "application/json");
  EXPECT_NE(alerts.body.find("\"m_high\""), std::string::npos);
  EXPECT_NE(alerts.body.find("\"firing\""), std::string::npos);

  // Without a store the endpoints don't exist.
  obs::HttpRequest request;
  request.method = "GET";
  request.target = "/query?expr=m";
  EXPECT_EQ(obs::RouteSnapshotRequest(request, board).status, 404);
  request.target = "/alerts";
  EXPECT_EQ(obs::RouteSnapshotRequest(request, board).status, 404);
}

TEST(LivePlaneTest, TsdbPlaneIsAPureObserver) {
  // Identical spec with and without the TSDB plane: per-API totals match
  // sample for sample, while the plane itself captured real series.
  exp::RunResult plain = exp::RunExecutor::RunOne(LiveSpec("tsdb-observer"));

  obs::TsdbPlane plane;
  for (obs::AlertRule& rule : obs::SloBurnRules()) {
    plane.rules().AddAlert(std::move(rule));
  }
  exp::RunSpec spec = LiveSpec("tsdb-observer");
  spec.tsdb = &plane;
  exp::RunResult observed = exp::RunExecutor::RunOne(spec);

  const auto& a = plain.app->metrics().Totals();
  const auto& b = observed.app->metrics().Totals();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offered, b[i].offered) << "api " << i;
    EXPECT_EQ(a[i].admitted, b[i].admitted) << "api " << i;
    EXPECT_EQ(a[i].completed, b[i].completed) << "api " << i;
    EXPECT_EQ(a[i].good, b[i].good) << "api " << i;
  }
  EXPECT_GT(plane.tsdb().stats().series, 0u);
  EXPECT_GT(plane.tsdb().stats().appended, 0u);
  EXPECT_GT(plane.tsdb().LatestTime(), 0.0);
  EXPECT_GT(plane.rules().last_eval_s(), 0.0);
}

TEST(LivePlaneTest, ReplayedStoreAnswersQueriesByteIdentically) {
  obs::TsdbPlane plane;
  exp::RunSpec spec = LiveSpec("tsdb-replay");
  spec.tsdb = &plane;
  exp::RunExecutor::RunOne(spec);
  ASSERT_GT(plane.tsdb().stats().appended, 0u);

  // The artifact reload (what `topfull serve --dir` and `topfull query
  // --dir` do) must answer every query byte-identically to the live store.
  std::string error;
  const auto reloaded = obs::TsdbFromJson(obs::TsdbJson(plane.tsdb()), &error);
  ASSERT_NE(reloaded, nullptr) << error;

  const char* targets[] = {
      "/query?expr=sum%20by(api)%20(topfull_requests_good_total)",
      "/query?expr=sum(rate(topfull_requests_completed_total[5s]))",
      "/query?expr=topfull_requests_offered_total&start=1&end=5&step=1",
      "/query?expr=histogram_quantile(0.99,%20topfull_request_latency_ms_bucket)",
  };
  for (const char* target : targets) {
    obs::HttpRequest request;
    request.method = "GET";
    request.target = target;
    const obs::HttpResponse live_response =
        obs::HandleQueryRequest(request, plane.tsdb());
    const obs::HttpResponse replayed =
        obs::HandleQueryRequest(request, *reloaded);
    EXPECT_EQ(live_response.status, 200) << target;
    EXPECT_EQ(live_response.body, replayed.body) << target;
  }
}

}  // namespace
}  // namespace topfull

// Tests for the streaming metrics engine: log-bucketed histograms, the
// per-application metrics registry, and the Prometheus text-exposition
// renderer (escaping + golden output).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"

namespace topfull {
namespace {

// --- Histogram ---------------------------------------------------------------

TEST(MetricsTest, EmptyHistogramReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(MetricsTest, HistogramExactMomentsAndClampedPercentiles) {
  obs::Histogram h;
  h.Record(7.25);
  h.Record(7.25);
  h.RecordN(7.25, 98);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 725.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 7.25);
  EXPECT_DOUBLE_EQ(h.min(), 7.25);
  EXPECT_DOUBLE_EQ(h.max(), 7.25);
  // All samples equal: every quantile must clamp to the exact value.
  for (const double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 7.25) << "p=" << p;
  }
}

TEST(MetricsTest, HistogramPercentileErrorBoundedBySubBuckets) {
  obs::HistogramConfig config;
  config.min_value = 1e-3;
  config.max_value = 1e6;
  config.sub_buckets = 32;
  obs::Histogram h(config);
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v));
  // Percentile returns a bucket upper bound >= the true quantile and within
  // one sub-bucket slice above it: relative error <= 1/sub_buckets.
  const double rel = 1.0 / config.sub_buckets;
  struct Case { double p; double exact; };
  for (const Case c : {Case{50, 500}, Case{95, 950}, Case{99, 990}}) {
    const double est = h.Percentile(c.p);
    EXPECT_GE(est, c.exact) << "p=" << c.p;
    EXPECT_LE(est, c.exact * (1.0 + rel) + 1e-9) << "p=" << c.p;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);  // clamped to the exact max
}

TEST(MetricsTest, HistogramUnderflowAndOverflowNeverLoseSamples) {
  obs::HistogramConfig config;
  config.min_value = 1.0;
  config.max_value = 100.0;
  obs::Histogram h(config);
  h.Record(0.25);   // underflow
  h.Record(1e9);    // overflow
  h.Record(10.0);   // in range
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.25 + 1e9 + 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_EQ(h.BucketCount(0), 1u);                   // underflow bucket
  EXPECT_EQ(h.BucketCount(h.NumBuckets() - 1), 1u);  // overflow bucket
  EXPECT_TRUE(std::isinf(h.UpperBound(h.NumBuckets() - 1)));
  // The top percentile clamps to the exact observed max, not +Inf.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1e9);
}

TEST(MetricsTest, HistogramMergeMatchesCombinedRecording) {
  obs::HistogramConfig config;
  config.sub_buckets = 8;
  obs::Histogram evens(config), odds(config), all(config);
  for (int v = 1; v <= 1000; ++v) {
    (v % 2 == 0 ? evens : odds).Record(static_cast<double>(v));
    all.Record(static_cast<double>(v));
  }
  evens.Merge(odds);
  EXPECT_EQ(evens.count(), all.count());
  EXPECT_DOUBLE_EQ(evens.sum(), all.sum());
  EXPECT_DOUBLE_EQ(evens.min(), all.min());
  EXPECT_DOUBLE_EQ(evens.max(), all.max());
  ASSERT_EQ(evens.NumBuckets(), all.NumBuckets());
  for (int b = 0; b < all.NumBuckets(); ++b) {
    EXPECT_EQ(evens.BucketCount(b), all.BucketCount(b)) << "bucket " << b;
  }
  for (const double p : {50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(evens.Percentile(p), all.Percentile(p)) << "p=" << p;
  }
}

TEST(MetricsTest, HistogramResetClearsEverything) {
  obs::Histogram h;
  h.Record(3.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  for (int b = 0; b < h.NumBuckets(); ++b) EXPECT_EQ(h.BucketCount(b), 0u);
}

// --- Registry ----------------------------------------------------------------

TEST(MetricsTest, RegistryHandlesAreStableAndCached) {
  obs::MetricsRegistry registry;
  obs::Counter* c1 = registry.GetCounter("topfull_x_total", "X.", {{"api", "a"}});
  obs::Counter* c2 = registry.GetCounter("topfull_x_total", "X.", {{"api", "a"}});
  EXPECT_EQ(c1, c2) << "same name+labels must resolve to the same cell";
  obs::Counter* other = registry.GetCounter("topfull_x_total", "X.", {{"api", "b"}});
  EXPECT_NE(c1, other);
  c1->Inc(41);
  c1->Inc();
  const obs::MetricsRegistry::Cell* found =
      registry.Find("topfull_x_total", {{"api", "a"}});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->counter.value(), 42u);
  EXPECT_EQ(registry.Find("topfull_x_total", {{"api", "zzz"}}), nullptr);
  EXPECT_EQ(registry.Find("topfull_absent_total"), nullptr);
}

TEST(MetricsTest, RegistryFamiliesIterateInSortedOrder) {
  obs::MetricsRegistry registry;
  registry.GetGauge("topfull_c", "C.");
  registry.GetCounter("topfull_a_total", "A.");
  registry.GetHistogram("topfull_b_ms", "B.");
  std::vector<std::string> names;
  for (const auto& [name, family] : registry.families()) names.push_back(name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"topfull_a_total", "topfull_b_ms", "topfull_c"}));
  EXPECT_EQ(registry.FamilyCount(), 3u);
}

TEST(MetricsTest, RegistryLabelKeyIsCanonical) {
  EXPECT_EQ(obs::MetricsRegistry::LabelKey({}), "");
  EXPECT_EQ(obs::MetricsRegistry::LabelKey({{"api", "a"}}), "api=a");
  EXPECT_EQ(obs::MetricsRegistry::LabelKey({{"api", "a"}, {"svc", "b"}}),
            "api=a,svc=b");
}

// --- Prometheus text exposition ----------------------------------------------

TEST(MetricsTest, PromEscapingFollowsTextExpositionSpec) {
  EXPECT_EQ(obs::PromEscapeLabel("plain"), "plain");
  EXPECT_EQ(obs::PromEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  // HELP text escapes backslash and newline but not quotes.
  EXPECT_EQ(obs::PromEscapeHelp("a\"b\\c\nd"), "a\"b\\\\c\\nd");
}

TEST(MetricsTest, PromTextGoldenRendering) {
  obs::MetricsRegistry registry;
  obs::Counter* checkout = registry.GetCounter(
      "topfull_demo_requests_total", "Requests with \"quotes\" and \\ backslash.",
      {{"api", "checkout"}});
  checkout->Inc(3);
  registry
      .GetCounter("topfull_demo_requests_total", "ignored (first help wins)",
                  {{"api", "weird\"name\\x\ny"}})
      ->Inc();
  registry.GetGauge("topfull_demo_temperature", "Line one\nline two.")->Set(2.5);
  registry.GetGauge("topfull_demo_temperature", "", {{"kind", "inf"}})
      ->Set(std::numeric_limits<double>::infinity());
  registry.GetHistogram("topfull_demo_latency_ms", "Latency distribution.");

  const std::string expected =
      "# HELP topfull_demo_latency_ms Latency distribution.\n"
      "# TYPE topfull_demo_latency_ms histogram\n"
      "topfull_demo_latency_ms_bucket{le=\"+Inf\"} 0\n"
      "topfull_demo_latency_ms_sum 0\n"
      "topfull_demo_latency_ms_count 0\n"
      "# HELP topfull_demo_requests_total Requests with \"quotes\" and \\\\ "
      "backslash.\n"
      "# TYPE topfull_demo_requests_total counter\n"
      "topfull_demo_requests_total{api=\"checkout\"} 3\n"
      "topfull_demo_requests_total{api=\"weird\\\"name\\\\x\\ny\"} 1\n"
      "# HELP topfull_demo_temperature Line one\\nline two.\n"
      "# TYPE topfull_demo_temperature gauge\n"
      "topfull_demo_temperature 2.5\n"
      "topfull_demo_temperature{kind=\"inf\"} +Inf\n";
  EXPECT_EQ(obs::PromTextFromRegistry(registry), expected);
}

TEST(MetricsTest, PromHistogramBucketsAreCumulativeAndEndAtInf) {
  obs::MetricsRegistry registry;
  obs::HistogramConfig config;
  config.min_value = 1.0;
  config.max_value = 64.0;
  config.sub_buckets = 2;
  obs::Histogram* h = registry.GetHistogram("topfull_demo_wait_ms", "Wait.",
                                            {{"svc", "frontend"}}, config);
  h->Record(1.1);
  h->Record(3.0);
  h->Record(3.0);
  h->Record(1e9);  // overflow: counted only by the +Inf bucket
  const std::string text = obs::PromTextFromRegistry(registry);

  // Parse the bucket series back out and check cumulative monotonicity.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  std::size_t pos = 0;
  const std::string needle = "topfull_demo_wait_ms_bucket{svc=\"frontend\",le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    const std::size_t quote = text.find('"', pos);
    const std::string le = text.substr(pos, quote - pos);
    const std::size_t space = text.find(' ', quote);
    const std::size_t eol = text.find('\n', space);
    buckets.emplace_back(le == "+Inf" ? std::numeric_limits<double>::infinity()
                                      : std::stod(le),
                         std::stoull(text.substr(space + 1, eol - space - 1)));
  }
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_TRUE(std::isinf(buckets.back().first)) << "+Inf bucket must be last";
  EXPECT_EQ(buckets.back().second, 4u) << "+Inf bucket carries the total count";
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1].first, buckets[i].first);
    EXPECT_LE(buckets[i - 1].second, buckets[i].second) << "not cumulative";
  }
  EXPECT_NE(text.find("topfull_demo_wait_ms_sum{svc=\"frontend\"} "),
            std::string::npos);
  EXPECT_NE(text.find("topfull_demo_wait_ms_count{svc=\"frontend\"} 4\n"),
            std::string::npos);
}

}  // namespace
}  // namespace topfull

// Tests for the telemetry subsystem: request span tracing, the controller
// decision log, exporters, the profiler, and the observation-only contract
// (tracing must never change simulation results).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>

#include "core/controller.hpp"
#include "core/rate_controller.hpp"
#include "exp/csv.hpp"
#include "exp/harness.hpp"
#include "exp/run_executor.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "workload/generators.hpp"

namespace topfull {
namespace {

sim::ServiceConfig Svc(const char* name, double mean_ms, int threads, int pods) {
  sim::ServiceConfig config;
  config.name = name;
  config.mean_service_ms = mean_ms;
  config.service_sigma = 0.25;
  config.threads = threads;
  config.initial_pods = pods;
  return config;
}

/// Two-service app: api0 -> {A, B} (B is the 400 rps bottleneck), api1 -> {A}.
std::unique_ptr<sim::Application> MakeApp(std::uint64_t seed = 7) {
  auto app = std::make_unique<sim::Application>("obs-app", seed);
  const sim::ServiceId a = app->AddService(Svc("A", 4.0, 8, 1));   // 2000 rps
  const sim::ServiceId b = app->AddService(Svc("B", 10.0, 4, 1));  // 400 rps
  sim::ApiSpec api0("api0", 1);
  api0.AddPath(sim::ExecutionPath{sim::Chain({a, b}), 1.0, {}});
  app->AddApi(std::move(api0));
  sim::ApiSpec api1("api1", 1);
  api1.AddPath(sim::ExecutionPath{sim::Chain({a}), 1.0, {}});
  app->AddApi(std::move(api1));
  app->Finalize();
  return app;
}

/// Overloads B: api0 at 800 rps against 400 rps capacity.
void DriveOverload(workload::TrafficDriver& traffic) {
  traffic.AddOpenLoop(0, workload::Schedule::Constant(800));
  traffic.AddOpenLoop(1, workload::Schedule::Constant(400));
}

std::unique_ptr<core::TopFullController> MakeController(sim::Application& app) {
  auto controller = std::make_unique<core::TopFullController>(
      &app, std::make_unique<core::MimdRateController>(0.05, 0.01));
  controller->Start();
  return controller;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// --- Conservation invariants (cross-checked against the span stream) ---------

TEST(ObsTest, ConservationInvariantsAndSpanStreamAgree) {
  auto app = MakeApp();
  obs::RequestTracer tracer;  // sample everything
  app->SetObserver(&tracer);
  auto controller = MakeController(*app);
  workload::TrafficDriver traffic(app.get());
  DriveOverload(traffic);
  app->RunFor(Seconds(30));

  const auto& totals = app->metrics().Totals();
  ASSERT_EQ(totals.size(), 2u);
  std::uint64_t offered = 0, admitted = 0, rejected_entry = 0;
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    // Whole-run conservation per API.
    EXPECT_EQ(totals[a].offered, totals[a].admitted + totals[a].rejected_entry);
    EXPECT_GE(totals[a].admitted, totals[a].completed);
    offered += totals[a].offered;
    admitted += totals[a].admitted;
    rejected_entry += totals[a].rejected_entry;
    // Per-window: offered splits exactly; admissions never lag completions
    // cumulatively (a request can complete in a later window than it was
    // admitted in, so the per-window invariant is on prefix sums).
    std::uint64_t adm_prefix = 0, done_prefix = 0;
    for (const auto& snap : app->metrics().Timeline()) {
      const auto& w = snap.apis[a];
      EXPECT_EQ(w.offered, w.admitted + w.rejected_entry);
      adm_prefix += w.admitted;
      done_prefix += w.completed;
      EXPECT_GE(adm_prefix, done_prefix);
    }
  }
  EXPECT_GT(rejected_entry, 0u) << "controller should be shedding under overload";

  // The tracer saw exactly the metrics collector's request stream.
  const obs::TracerCounters& counters = tracer.counters();
  EXPECT_EQ(counters.offered, offered);
  EXPECT_EQ(counters.admitted, admitted);
  EXPECT_EQ(counters.rejected_entry, rejected_entry);
  EXPECT_EQ(counters.dropped, 0u);

  // A trace exists for every sampled admitted request: finished admitted
  // traces + still-in-flight traces == admitted.
  std::uint64_t finished_admitted = 0, completed = 0, good = 0;
  std::map<sim::ApiId, std::uint64_t> good_per_api;
  for (const obs::RequestTrace& trace : tracer.finished()) {
    if (trace.outcome == sim::Outcome::kRejectedEntry) continue;
    ++finished_admitted;
    EXPECT_GT(trace.id, 0u);
    EXPECT_FALSE(trace.spans.empty()) << "admitted request without spans";
    if (trace.outcome == sim::Outcome::kCompleted) {
      ++completed;
      if (trace.slo_ok) {
        ++good;
        ++good_per_api[trace.api];
      }
      for (const obs::HopSpan& span : trace.spans) {
        EXPECT_TRUE(span.ok);
        EXPECT_EQ(span.end - span.start, span.queue_wait + span.service_time);
      }
    }
  }
  EXPECT_EQ(finished_admitted + tracer.ActiveCount(), admitted);

  // Span SLO outcomes agree with the goodput accounting (ApiWindow::good).
  std::uint64_t metrics_completed = 0, metrics_good = 0;
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    metrics_completed += totals[a].completed;
    metrics_good += totals[a].good;
    EXPECT_EQ(good_per_api[a], totals[a].good);
  }
  EXPECT_EQ(completed, metrics_completed);
  EXPECT_EQ(good, metrics_good);
}

// --- Regression: zero-completion windows must report zero percentiles --------

TEST(ObsTest, ZeroCompletionWindowReportsZeroPercentiles) {
  sim::MetricsCollector collector(1, Seconds(1));
  collector.OnOffered(0);
  collector.OnAdmitted(0);
  collector.OnCompleted(0, Millis(250));
  const auto& first = collector.Collect(Seconds(1), {});
  EXPECT_GT(first.apis[0].latency_p95_ms, 0.0);

  // Next window has traffic but no completions: the latency digest must not
  // reuse the previous window's scratch buffer.
  collector.OnOffered(0);
  collector.OnAdmitted(0);
  const auto& second = collector.Collect(Seconds(2), {});
  EXPECT_EQ(second.apis[0].completed, 0u);
  EXPECT_EQ(second.apis[0].latency_p50_ms, 0.0);
  EXPECT_EQ(second.apis[0].latency_p95_ms, 0.0);
  EXPECT_EQ(second.apis[0].latency_p99_ms, 0.0);
  EXPECT_EQ(second.apis[0].latency_mean_ms, 0.0);
}

// --- Tracing is observation-only ---------------------------------------------

TEST(ObsTest, TracingIsPassThrough) {
  const auto run = [](bool traced) {
    auto app = MakeApp();
    obs::RequestTracer tracer;
    if (traced) app->SetObserver(&tracer);
    auto controller = MakeController(*app);
    workload::TrafficDriver traffic(app.get());
    DriveOverload(traffic);
    app->RunFor(Seconds(20));
    return app;
  };
  const auto plain = run(false);
  const auto traced = run(true);
  const auto& a = plain->metrics().Timeline();
  const auto& b = traced->metrics().Timeline();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].apis.size(), b[i].apis.size());
    for (std::size_t j = 0; j < a[i].apis.size(); ++j) {
      const auto& x = a[i].apis[j];
      const auto& y = b[i].apis[j];
      EXPECT_EQ(x.offered, y.offered);
      EXPECT_EQ(x.admitted, y.admitted);
      EXPECT_EQ(x.rejected_entry, y.rejected_entry);
      EXPECT_EQ(x.rejected_service, y.rejected_service);
      EXPECT_EQ(x.completed, y.completed);
      EXPECT_EQ(x.good, y.good);
      EXPECT_EQ(x.latency_p50_ms, y.latency_p50_ms);  // bit-exact
      EXPECT_EQ(x.latency_p95_ms, y.latency_p95_ms);
      EXPECT_EQ(x.latency_p99_ms, y.latency_p99_ms);
    }
  }
}

// --- Sampling ----------------------------------------------------------------

TEST(ObsTest, SamplingRateAndMemoryCapBoundTraceCount) {
  const auto run = [](obs::TraceConfig config) {
    auto app = MakeApp();
    obs::RequestTracer tracer(config);
    app->SetObserver(&tracer);
    workload::TrafficDriver traffic(app.get());
    DriveOverload(traffic);
    app->RunFor(Seconds(10));
    return std::make_pair(tracer.counters(), tracer.finished().size());
  };

  obs::TraceConfig half;
  half.sample_rate = 0.5;
  const auto [counters, finished] = run(half);
  // ~50 % of ~12k offered requests; the hash is uniform enough for 10 %.
  EXPECT_NEAR(static_cast<double>(counters.sampled),
              0.5 * static_cast<double>(counters.offered),
              0.1 * static_cast<double>(counters.offered));
  EXPECT_EQ(counters.dropped, 0u);

  obs::TraceConfig capped;
  capped.max_traces = 100;
  const auto [capped_counters, capped_finished] = run(capped);
  EXPECT_LE(capped_finished, 100u);
  EXPECT_GT(capped_counters.dropped, 0u);

  obs::TraceConfig off;
  off.sample_rate = 0.0;
  const auto [off_counters, off_finished] = run(off);
  EXPECT_EQ(off_counters.sampled, 0u);
  EXPECT_EQ(off_finished, 0u);
}

// --- Decision log ------------------------------------------------------------

TEST(ObsTest, DecisionLogTracksControllerLimits) {
  auto app = MakeApp();
  auto controller = MakeController(*app);
  obs::DecisionLog log;
  controller->SetDecisionObserver(&log);
  workload::TrafficDriver traffic(app.get());
  DriveOverload(traffic);
  app->RunFor(Seconds(30));

  ASSERT_FALSE(log.ticks().empty());
  EXPECT_EQ(log.DecisionCount(), controller->Decisions());

  // Replaying the per-tick limit deltas ends at the controller's published
  // limits, and each tick's "before" chains from the previous "after".
  std::map<sim::ApiId, double> replayed;
  for (const obs::TickRecord& tick : log.ticks()) {
    for (const obs::LimitDelta& delta : tick.limits) {
      const auto it = replayed.find(delta.api);
      if (it != replayed.end()) {
        EXPECT_DOUBLE_EQ(it->second, delta.before);
      }
      replayed[delta.api] = delta.after;
    }
  }
  EXPECT_FALSE(replayed.empty());
  for (const auto& [api, rate] : replayed) {
    const auto published = controller->RateLimit(api);
    ASSERT_TRUE(published.has_value());
    EXPECT_DOUBLE_EQ(*published, rate);
  }

  // Every logged decision happened inside a tick with a cluster, and the
  // tick time advances monotonically.
  double last_t = -1.0;
  for (const obs::TickRecord& tick : log.ticks()) {
    EXPECT_GT(tick.t_s, last_t);
    last_t = tick.t_s;
    for (const obs::TargetDecision& decision : tick.decisions) {
      EXPECT_FALSE(decision.apis.empty());
      EXPECT_GE(decision.state.rate_limit, 0.0);
    }
  }
}

// --- Exporters ---------------------------------------------------------------

TEST(ObsTest, ExportsAreDeterministicAndWellFormed) {
  const auto export_to = [](const std::string& dir) {
    exp::TelemetryOptions options;
    options.dir = dir;
    exp::Telemetry telemetry(options);
    auto app = MakeApp();
    telemetry.Attach(*app);
    auto controller = MakeController(*app);
    telemetry.Attach(*controller);
    workload::TrafficDriver traffic(app.get());
    DriveOverload(traffic);
    app->RunFor(Seconds(15));
    const exp::TelemetrySummary summary =
        telemetry.Export(*app, "demo", controller.get(), /*faults=*/nullptr,
                         /*log_stderr=*/false);
    EXPECT_EQ(summary.paths.size(), 5u);
    EXPECT_GT(summary.sampled, 0u);
    EXPECT_GT(summary.ticks, 0u);
    return summary;
  };
  const std::string dir1 = testing::TempDir() + "obs_export_1";
  const std::string dir2 = testing::TempDir() + "obs_export_2";
  export_to(dir1);
  export_to(dir2);

  for (const char* file :
       {"/demo.trace.json", "/demo.decisions.jsonl", "/demo.metrics.prom",
        "/demo.summary.json", "/demo.report.html"}) {
    const std::string a = ReadFile(dir1 + file);
    const std::string b = ReadFile(dir2 + file);
    ASSERT_FALSE(a.empty()) << file;
    EXPECT_EQ(a, b) << file << " not byte-identical across identical runs";
  }

  const std::string trace = ReadFile(dir1 + "/demo.trace.json");
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"queue_wait_ms\""), std::string::npos);

  const std::string prom = ReadFile(dir1 + "/demo.metrics.prom");
  EXPECT_NE(prom.find("topfull_requests_offered_total{api=\"api0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("topfull_api_rate_limit_rps"), std::string::npos);
  EXPECT_NE(prom.find("topfull_trace_sampled_total"), std::string::npos);

  const std::string summary_json = ReadFile(dir1 + "/demo.summary.json");
  EXPECT_NE(summary_json.find("\"schema\":\"topfull.run_summary.v1\""),
            std::string::npos);
  EXPECT_NE(summary_json.find("\"goodput_rps\""), std::string::npos);

  const std::string html = ReadFile(dir1 + "/demo.report.html");
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  // Self-contained: no external stylesheet/script/image references.
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
}

TEST(ObsTest, RunExecutorTelemetryIsIdenticalAcrossPoolSizes) {
  const auto sweep = [](int threads, const std::string& dir) {
    setenv("TOPFULL_TRACE_DIR", dir.c_str(), 1);
    setenv("TOPFULL_TRACE_SAMPLE", "0.25", 1);
    std::vector<exp::RunSpec> specs;
    for (int i = 0; i < 3; ++i) {
      exp::RunSpec spec;
      spec.label = "sweep seed=" + std::to_string(i);
      spec.duration_s = 8;
      spec.make_app = [i]() { return MakeApp(100 + i); };
      spec.traffic = [](workload::TrafficDriver& traffic, sim::Application&) {
        DriveOverload(traffic);
      };
      spec.attach = [](sim::Application& app) -> std::shared_ptr<void> {
        auto controller = MakeController(app);
        return std::shared_ptr<void>(std::move(controller));
      };
      specs.push_back(std::move(spec));
    }
    ThreadPool pool(threads);
    exp::RunExecutor(&pool).Execute(specs);
    unsetenv("TOPFULL_TRACE_DIR");
    unsetenv("TOPFULL_TRACE_SAMPLE");
  };
  const std::string dir1 = testing::TempDir() + "obs_pool_1";
  const std::string dir4 = testing::TempDir() + "obs_pool_4";
  sweep(1, dir1);
  sweep(4, dir4);

  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir1)) {
    ++files;
    const std::string name = entry.path().filename().string();
    const std::string a = ReadFile(entry.path().string());
    const std::string b = ReadFile(dir4 + "/" + name);
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name << " differs between pool sizes 1 and 4";
  }
  // trace + prom + summary + report per run (custom attach: no jsonl).
  EXPECT_EQ(files, 3 * 4);
}

// --- Satellite: CSV export creates its directory -----------------------------

TEST(ObsTest, CsvExportCreatesMissingDirectory) {
  const std::string dir = testing::TempDir() + "obs_csv/nested/deep";
  std::filesystem::remove_all(testing::TempDir() + "obs_csv");
  setenv("TOPFULL_CSV_DIR", dir.c_str(), 1);
  auto app = MakeApp();
  workload::TrafficDriver traffic(app.get());
  DriveOverload(traffic);
  app->RunFor(Seconds(3));
  exp::MaybeExportTimeline(*app, "conservation");
  unsetenv("TOPFULL_CSV_DIR");
  EXPECT_TRUE(std::filesystem::exists(dir + "/conservation.csv"));
}

// --- Profiler ----------------------------------------------------------------

TEST(ObsTest, ProfilerRecordsScopesWhenEnabled) {
  obs::Profiler& profiler = obs::Profiler::Global();
  const bool was_enabled = profiler.enabled();
  profiler.Reset();
  profiler.SetEnabled(false);
  { obs::ScopedTimer timer("test/disabled"); }
  EXPECT_TRUE(profiler.Snapshot().empty());
  profiler.SetEnabled(true);
  { obs::ScopedTimer timer("test/enabled"); }
  { obs::ScopedTimer timer("test/enabled"); }
  const auto snapshot = profiler.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "test/enabled");
  EXPECT_EQ(snapshot[0].second.count, 2u);
  EXPECT_GE(snapshot[0].second.total_s, 0.0);
  profiler.SetEnabled(was_enabled);
  profiler.Reset();
}

TEST(ObsTest, ProfilerAggregatesNestedScopesAndSortsSnapshot) {
  obs::Profiler& profiler = obs::Profiler::Global();
  const bool was_enabled = profiler.enabled();
  profiler.Reset();
  profiler.SetEnabled(true);
  // Nested scopes: the outer phase's time includes the inner ones, each
  // phase aggregates independently by name.
  for (int i = 0; i < 3; ++i) {
    obs::ScopedTimer outer("zeta/outer");
    {
      obs::ScopedTimer inner("alpha/inner");
      { obs::ScopedTimer leaf("mid/leaf"); }
    }
  }
  { obs::ScopedTimer again("alpha/inner"); }
  const auto snapshot = profiler.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Sorted by phase name regardless of first-recorded order.
  EXPECT_EQ(snapshot[0].first, "alpha/inner");
  EXPECT_EQ(snapshot[1].first, "mid/leaf");
  EXPECT_EQ(snapshot[2].first, "zeta/outer");
  EXPECT_EQ(snapshot[0].second.count, 4u);
  EXPECT_EQ(snapshot[1].second.count, 3u);
  EXPECT_EQ(snapshot[2].second.count, 3u);
  // Wall time of an enclosing scope covers its nested scopes.
  EXPECT_GE(snapshot[2].second.total_s, snapshot[1].second.total_s);
  EXPECT_GE(snapshot[0].second.max_s, 0.0);
  EXPECT_LE(snapshot[0].second.max_s, snapshot[0].second.total_s + 1e-12);
  profiler.SetEnabled(was_enabled);
  profiler.Reset();
}

// --- JSON escaping -----------------------------------------------------------

TEST(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::JsonEscape("plain-name_1.2"), "plain-name_1.2");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::JsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(ObsTest, SanitizeFileNameReplacesHostileChars) {
  EXPECT_EQ(exp::SanitizeFileName("sweep seed=3"), "sweep_seed_3");
  EXPECT_EQ(exp::SanitizeFileName("a/b:c"), "a_b_c");
  EXPECT_EQ(exp::SanitizeFileName(""), "run");
}

}  // namespace
}  // namespace topfull

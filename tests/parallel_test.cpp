// The parallelism/determinism contract: thread-pool mechanics (ordering,
// exception propagation, reentrancy, env sizing) and the bit-identical
// guarantee — PPO rollout batches and RunExecutor sweep tables must not
// change with the worker-pool size.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/online_boutique.hpp"
#include "common/thread_pool.hpp"
#include "exp/harness.hpp"
#include "exp/run_executor.hpp"
#include "rl/graph_sim_env.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"

namespace topfull {
namespace {

// --- ThreadPool mechanics ---------------------------------------------------

TEST(ThreadPoolTest, ParallelMapPreservesSubmissionOrder) {
  ThreadPool pool(4);
  // Early tasks sleep longest, so completion order inverts submission
  // order; results must still come back in submission order.
  const std::vector<int> results = pool.ParallelMap(16, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds((16 - i) % 4));
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromParallelMap) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelMap(8, [&completed](std::size_t i) {
      if (i == 3) throw std::runtime_error("task 3 failed");
      ++completed;
      return static_cast<int>(i);
    });
    FAIL() << "expected ParallelMap to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3 failed");
  }
  // Every other task still ran to completion before the rethrow (no
  // dangling work referencing the caller's stack).
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromSubmit) {
  ThreadPool pool(1);  // also covers the inline path
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ReentrantParallelMapRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  // Outer tasks occupy every worker, then fan out again on the same pool;
  // the nested maps must run inline on the workers instead of queueing
  // (queueing would deadlock both workers against their own queue).
  const std::vector<int> totals = pool.ParallelMap(4, [&pool](std::size_t outer) {
    EXPECT_TRUE(pool.OnWorkerThread());
    const std::vector<int> inner =
        pool.ParallelMap(3, [](std::size_t i) { return static_cast<int>(i + 1); });
    int sum = 0;
    for (const int v : inner) sum += v;
    return sum + static_cast<int>(outer);
  });
  for (std::size_t outer = 0; outer < totals.size(); ++outer) {
    EXPECT_EQ(totals[outer], 6 + static_cast<int>(outer));
  }
}

TEST(ThreadPoolTest, SizeOneRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  const std::vector<std::thread::id> ids =
      pool.ParallelMap(3, [](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPoolTest, EnvVariableSizesDefaultPool) {
  ASSERT_EQ(setenv("TOPFULL_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::EnvThreads(), 3);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 3);
  ASSERT_EQ(unsetenv("TOPFULL_THREADS"), 0);
  EXPECT_GE(ThreadPool::EnvThreads(), 1);
}

// --- Determinism contract ---------------------------------------------------

std::vector<double> TrainedParams(ThreadPool* pool, bool use_factory) {
  Rng rng(33);
  rl::GaussianPolicy policy(rl::PolicyConfig{}, rng);
  rl::PpoConfig config;
  config.episodes_per_iter = 8;
  config.steps_per_episode = 20;
  rl::PpoTrainer trainer(&policy, config, /*seed=*/77);
  trainer.set_pool(pool);
  if (use_factory) {
    auto make_env = []() -> std::unique_ptr<rl::Env> {
      return std::make_unique<rl::GraphSimEnv>(rl::GraphSimConfig{}, /*base_seed=*/5);
    };
    for (int i = 0; i < 3; ++i) trainer.TrainIteration(make_env);
  } else {
    rl::GraphSimEnv env({}, /*base_seed=*/5);
    for (int i = 0; i < 3; ++i) trainer.TrainIteration(env);
  }
  std::vector<double> params;
  policy.CopyParamsTo(params);
  return params;
}

TEST(ParallelDeterminismTest, PpoTrainingIsPoolSizeInvariant) {
  ThreadPool sequential(1);
  ThreadPool parallel(4);
  const std::vector<double> p1 = TrainedParams(&sequential, /*use_factory=*/true);
  const std::vector<double> p4 = TrainedParams(&parallel, /*use_factory=*/true);
  // Bit-identical parameters after 3 iterations <=> bit-identical sample
  // batches (the update is a deterministic function of the batch).
  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p4[i]) << "param " << i;
}

TEST(ParallelDeterminismTest, FactoryPathMatchesSingleEnvPath) {
  ThreadPool parallel(4);
  const std::vector<double> factory = TrainedParams(&parallel, /*use_factory=*/true);
  const std::vector<double> single = TrainedParams(nullptr, /*use_factory=*/false);
  ASSERT_EQ(factory.size(), single.size());
  for (std::size_t i = 0; i < factory.size(); ++i) {
    EXPECT_EQ(factory[i], single[i]) << "param " << i;
  }
}

TEST(ParallelDeterminismTest, EvaluatePolicyIsPoolSizeInvariant) {
  Rng rng(44);
  rl::GaussianPolicy policy(rl::PolicyConfig{}, rng);
  rl::GraphSimEnv env({}, /*base_seed=*/9);
  auto make_env = []() -> std::unique_ptr<rl::Env> {
    return std::make_unique<rl::GraphSimEnv>(rl::GraphSimConfig{}, /*base_seed=*/9);
  };
  const double sequential = rl::EvaluatePolicy(policy, env, 6, 100, 25);
  ThreadPool pool(4);
  const double parallel = rl::EvaluatePolicy(policy, make_env, 6, 100, 25, &pool);
  EXPECT_EQ(sequential, parallel);
}

std::vector<exp::RunSpec> SmallSweep() {
  std::vector<exp::RunSpec> specs;
  for (const exp::Variant variant :
       {exp::Variant::kNoControl, exp::Variant::kBreakwater}) {
    for (const int users : {600, 1800}) {
      exp::RunSpec spec;
      spec.label = exp::VariantName(variant) + "@" + std::to_string(users);
      spec.duration_s = 8.0;
      spec.variant = variant;
      spec.make_app = [] {
        apps::BoutiqueOptions options;
        options.seed = 23;
        return apps::MakeOnlineBoutique(options);
      };
      spec.traffic = [users](workload::TrafficDriver& traffic, sim::Application& app) {
        traffic.AddClosedLoop(exp::UniformUsers(app),
                              workload::Schedule::Constant(users));
      };
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<double> SweepTable(ThreadPool& pool) {
  const std::vector<exp::RunResult> results =
      exp::RunExecutor(&pool).Execute(SmallSweep());
  std::vector<double> goodputs;
  for (const auto& r : results) {
    goodputs.push_back(exp::TotalGoodput(*r.app, 2.0, 8.0));
  }
  return goodputs;
}

TEST(ParallelDeterminismTest, RunExecutorSweepIsPoolSizeInvariant) {
  ThreadPool sequential(1);
  ThreadPool parallel(4);
  const std::vector<double> t1 = SweepTable(sequential);
  const std::vector<double> t4 = SweepTable(parallel);
  ASSERT_EQ(t1.size(), 4u);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t4[i]) << "run " << i;
  // Sanity: the sweep actually served traffic.
  for (const double g : t1) EXPECT_GT(g, 0.0);
}

}  // namespace
}  // namespace topfull

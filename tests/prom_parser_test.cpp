// Tests for the strict Prometheus text parser: emitter round trips, label
// unescaping, value-lexeme preservation, and the malformed-line corpus
// with line-numbered rejections.
#include "obs/prom_parser.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/snapshot.hpp"

namespace topfull {
namespace {

std::string ReadDataFile(const std::string& name) {
  const std::string path = std::string(TOPFULL_PROM_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The emitter and the parser are inverses: any exposition the registry
// produces must survive parse + re-render byte for byte. This is the
// contract the out-of-process TSDB feed rests on.
TEST(PromParserTest, RegistryExpositionRoundTripsByteExactly) {
  obs::MetricsRegistry registry;
  registry.GetCounter("rt_req_total", "Requests \"served\".", {{"api", "a"}})
      ->Inc(3);
  registry.GetCounter("rt_req_total", "Requests \"served\".", {{"api", "b"}})
      ->Inc(7);
  registry.GetGauge("rt_depth", "Queue\ndepth.", {{"svc", "front"}})->Set(2.5);
  // Label values exercising every escape the emitter produces.
  registry.GetGauge("rt_odd", "Odd labels.", {{"q", "a\\b\"c\nd"}})->Set(1.0);
  auto* histogram =
      registry.GetHistogram("rt_latency_ms", "Latency.", {{"api", "a"}},
                            obs::HistogramConfig{0.1, 1e4, 8});
  histogram->Record(0.5);
  histogram->Record(12.0);
  histogram->Record(12.0);
  histogram->Record(9e9);

  const std::string text = obs::PromTextFromRegistry(registry);
  obs::PromScrape scrape;
  std::string error;
  ASSERT_TRUE(obs::ParsePromText(text, &scrape, &error)) << error;
  EXPECT_EQ(obs::PromTextFromScrape(scrape), text);
}

TEST(PromParserTest, ParsesStructureAndUnescapesLabels) {
  const std::string text =
      "# HELP req_total Total \\\"requests\\\" seen\\nso far.\n"
      "# TYPE req_total counter\n"
      "req_total{api=\"checkout\",q=\"a\\\\b\\\"c\\nd\"} 41 1700000000123\n"
      "# TYPE lat histogram\n"
      "lat_bucket{le=\"0.5\"} 1\n"
      "lat_bucket{le=\"+Inf\"} 2\n"
      "lat_sum 3.5\n"
      "lat_count 2\n";
  obs::PromScrape scrape;
  std::string error;
  ASSERT_TRUE(obs::ParsePromText(text, &scrape, &error)) << error;
  ASSERT_EQ(scrape.families.size(), 2u);

  const obs::PromFamily* req = scrape.FindFamily("req_total");
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->type, obs::MetricType::kCounter);
  EXPECT_TRUE(req->has_help);
  EXPECT_EQ(req->help, "Total \\\"requests\\\" seen\nso far.");
  ASSERT_EQ(req->samples.size(), 1u);
  const obs::PromSample& sample = req->samples[0];
  ASSERT_EQ(sample.labels.size(), 2u);
  EXPECT_EQ(sample.labels[0].second, "checkout");
  EXPECT_EQ(sample.labels[1].second, "a\\b\"c\nd");
  EXPECT_EQ(sample.value, 41.0);
  ASSERT_TRUE(sample.has_timestamp);
  EXPECT_EQ(sample.timestamp_ms, 1700000000123);

  // Histogram suffix resolution: all four samples land in one family.
  const obs::PromFamily* lat = scrape.FindFamily("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->type, obs::MetricType::kHistogram);
  EXPECT_EQ(lat->samples.size(), 4u);
  EXPECT_EQ(lat->samples[0].name, "lat_bucket");
  EXPECT_EQ(lat->samples[3].name, "lat_count");
}

TEST(PromParserTest, PreservesValueLexemesAndNonFiniteForms) {
  const std::string text =
      "# TYPE v gauge\n"
      "v{k=\"a\"} 1e-09\n"
      "v{k=\"b\"} NaN\n"
      "v{k=\"c\"} +Inf\n"
      "v{k=\"d\"} -Inf\n";
  obs::PromScrape scrape;
  std::string error;
  ASSERT_TRUE(obs::ParsePromText(text, &scrape, &error)) << error;
  const obs::PromFamily* family = scrape.FindFamily("v");
  ASSERT_NE(family, nullptr);
  ASSERT_EQ(family->samples.size(), 4u);
  EXPECT_EQ(family->samples[0].value_text, "1e-09");
  EXPECT_EQ(family->samples[0].value, 1e-09);
  EXPECT_TRUE(std::isnan(family->samples[1].value));
  EXPECT_TRUE(std::isinf(family->samples[2].value));
  EXPECT_GT(family->samples[2].value, 0.0);
  EXPECT_TRUE(std::isinf(family->samples[3].value));
  EXPECT_LT(family->samples[3].value, 0.0);
  // Re-rendering uses the preserved lexemes, not a reformatted double.
  EXPECT_EQ(obs::PromTextFromScrape(scrape), text);
}

struct CorpusCase {
  const char* file;
  const char* expected;  ///< substring the error must contain
};

// Every malformed exposition is rejected with the offending line number:
// a lenient parser would silently ingest emitter drift.
TEST(PromParserTest, MalformedCorpusIsRejectedWithLineNumbers) {
  const CorpusCase cases[] = {
      {"no_type.prom", "line 1: sample before # TYPE for 'x_total'"},
      {"bad_value.prom", "line 2: bad sample value 'one'"},
      {"unterminated_label.prom", "line 2: unterminated label value"},
      {"duplicate_type.prom", "line 2: duplicate # TYPE for 'x_total'"},
      {"type_after_samples.prom", "line 3: # TYPE after samples for 'x_total'"},
      {"unknown_directive.prom", "line 3: unknown comment directive"},
      {"bucket_without_le.prom", "line 2: _bucket sample without an le label"},
      {"blank_line.prom", "line 2: blank line"},
      {"bad_escape.prom", "line 2: unknown escape"},
      {"bad_timestamp.prom", "line 2: bad timestamp '12a3'"},
      {"bare_histogram_sample.prom",
       "line 2: histogram samples need a _bucket/_sum/_count suffix"},
      {"unknown_type.prom", "line 1: unknown metric type 'watermelon'"},
  };
  for (const CorpusCase& c : cases) {
    const std::string text = ReadDataFile(c.file);
    ASSERT_FALSE(text.empty()) << c.file;
    obs::PromScrape scrape;
    std::string error;
    EXPECT_FALSE(obs::ParsePromText(text, &scrape, &error)) << c.file;
    EXPECT_NE(error.find(c.expected), std::string::npos)
        << c.file << ": got '" << error << "'";
  }
}

// A rejection never leaves partial state behind that a later successful
// parse would inherit.
TEST(PromParserTest, RejectionClearsTheOutputScrape) {
  obs::PromScrape scrape;
  std::string error;
  ASSERT_TRUE(obs::ParsePromText("# TYPE ok_total counter\nok_total 1\n",
                                 &scrape, &error))
      << error;
  ASSERT_EQ(scrape.families.size(), 1u);
  EXPECT_FALSE(obs::ParsePromText(ReadDataFile("bad_value.prom"), &scrape,
                                  &error));
  // The failed parse starts from a clean slate: nothing from the previous
  // contents survives into the partial result.
  EXPECT_EQ(scrape.FindFamily("ok_total"), nullptr);
}

}  // namespace
}  // namespace topfull

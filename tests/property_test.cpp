// Property-based tests: parameterised sweeps asserting invariants over
// randomised inputs (seeded — failures reproduce exactly).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/token_bucket.hpp"
#include "common/union_find.hpp"
#include "core/cluster_tracker.hpp"
#include "core/clustering.hpp"
#include "des/sharded_simulation.hpp"
#include "des/simulation.hpp"
#include "obs/fairness.hpp"
#include "rl/graph_sim_env.hpp"
#include "rl/observation.hpp"
#include "rl/nn.hpp"
#include "sim/app.hpp"
#include "sim/request_observer.hpp"
#include "workload/generators.hpp"
#include "workload/schedule.hpp"

namespace topfull {
namespace {

// --- Token bucket: long-run admission tracks the configured rate -------------

class TokenBucketRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(TokenBucketRateSweep, LongRunAdmissionMatchesRate) {
  const double rate = GetParam();
  TokenBucket bucket(rate, std::max(2.0, rate / 10.0));
  Rng rng(static_cast<std::uint64_t>(rate) + 17);
  int admitted = 0;
  SimTime now = 0;
  // Random arrival pattern much denser than the rate.
  while (now < Seconds(20)) {
    now += static_cast<SimTime>(rng.Uniform(50, 500));  // 2k-20k arrivals/s
    admitted += bucket.TryAdmit(now) ? 1 : 0;
  }
  const double measured = admitted / 20.0;
  EXPECT_NEAR(measured, rate, rate * 0.05 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, TokenBucketRateSweep,
                         ::testing::Values(5.0, 50.0, 137.0, 400.0, 1000.0, 1900.0));

// --- Percentile: order statistics invariants ---------------------------------

class PercentileSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileSweep, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> values;
  const int n = static_cast<int>(rng.UniformInt(1, 400));
  for (int i = 0; i < n; ++i) values.push_back(rng.Uniform(-1e3, 1e3));
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  double prev = lo;
  for (double p = 0.0; p <= 100.0; p += 7.3) {
    const double v = Percentile(values, p);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    EXPECT_GE(v, prev - 1e-12);  // monotone in p
    prev = v;
  }
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), lo);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), hi);
  // Permutation invariance.
  std::vector<double> shuffled = values;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }
  EXPECT_DOUBLE_EQ(Percentile(values, 42.0), Percentile(shuffled, 42.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileSweep, ::testing::Range<std::uint64_t>(1, 9));

// --- Union-find vs brute-force connectivity ----------------------------------

class UnionFindSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionFindSweep, MatchesBruteForceReachability) {
  Rng rng(GetParam() * 977);
  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 60));
  UnionFind dsu(n);
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) adj[i][i] = true;
  const int edges = static_cast<int>(rng.UniformInt(0, 80));
  for (int e = 0; e < edges; ++e) {
    const auto a = static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    dsu.Union(a, b);
    adj[a][b] = adj[b][a] = true;
  }
  // Floyd-Warshall closure.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (adj[i][k] && adj[k][j]) adj[i][j] = true;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(dsu.Connected(i, j), adj[i][j]) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindSweep, ::testing::Range<std::uint64_t>(1, 13));

// --- DES: time never goes backwards; all due events fire ---------------------

class DesOrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesOrderSweep, EventsFireInNondecreasingTimeOrder) {
  Rng rng(GetParam() * 31337);
  des::Simulation sim;
  std::vector<SimTime> fired;
  const int n = static_cast<int>(rng.UniformInt(10, 300));
  int scheduled = 0;
  for (int i = 0; i < n; ++i) {
    const SimTime when = static_cast<SimTime>(rng.UniformInt(0, Seconds(100)));
    if (when <= Seconds(60)) ++scheduled;
    sim.ScheduleAt(when, [&fired, &sim]() { fired.push_back(sim.Now()); });
  }
  sim.RunUntil(Seconds(60));
  EXPECT_EQ(static_cast<int>(fired.size()), scheduled);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesOrderSweep, ::testing::Range<std::uint64_t>(1, 9));

// --- Schedule: At() equals the brute-force "last breakpoint <= t" ------------

class ScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleSweep, MatchesBruteForce) {
  Rng rng(GetParam() * 71);
  workload::Schedule schedule = workload::Schedule::Constant(rng.Uniform(0, 10));
  std::map<SimTime, double> points{{0, schedule.At(0)}};
  const int n = static_cast<int>(rng.UniformInt(1, 25));
  for (int i = 0; i < n; ++i) {
    const SimTime t = static_cast<SimTime>(rng.UniformInt(0, Seconds(100)));
    const double v = rng.Uniform(0, 100);
    schedule.Then(t, v);
    points[t] = v;
  }
  for (int probe = 0; probe < 200; ++probe) {
    const SimTime t = static_cast<SimTime>(rng.UniformInt(0, Seconds(110)));
    auto it = points.upper_bound(t);
    ASSERT_NE(it, points.begin());
    --it;
    EXPECT_DOUBLE_EQ(schedule.At(t), it->second) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleSweep, ::testing::Range<std::uint64_t>(1, 9));

// --- Clustering invariants over random registries ----------------------------

class ClusteringSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringSweep, PartitionAndIsolationInvariants) {
  Rng rng(GetParam() * 131);
  const int num_services = static_cast<int>(rng.UniformInt(3, 25));
  const int num_apis = static_cast<int>(rng.UniformInt(2, 20));
  auto app = std::make_unique<sim::Application>("prop", GetParam());
  for (int s = 0; s < num_services; ++s) {
    sim::ServiceConfig config;
    config.name = "s" + std::to_string(s);
    app->AddService(config);
  }
  for (int a = 0; a < num_apis; ++a) {
    sim::ApiSpec spec("api" + std::to_string(a), 1);
    std::set<sim::ServiceId> used;
    const int len =
        static_cast<int>(rng.UniformInt(1, std::min(6, num_services)));
    while (static_cast<int>(used.size()) < len) {
      used.insert(static_cast<sim::ServiceId>(rng.UniformInt(0, num_services - 1)));
    }
    spec.AddPath(sim::ExecutionPath{
        sim::Chain(std::vector<sim::ServiceId>(used.begin(), used.end())), 1.0, {}});
    app->AddApi(std::move(spec));
  }
  app->Finalize();
  core::ApiRegistry registry(*app);

  std::vector<sim::ServiceId> overloaded;
  for (int s = 0; s < num_services; ++s) {
    if (rng.Bernoulli(0.3)) overloaded.push_back(s);
  }
  const auto clusters = core::BuildClusters(registry, overloaded);

  // (1) Each involved API appears in exactly one cluster.
  std::map<sim::ApiId, int> seen;
  for (const auto& cluster : clusters) {
    for (const sim::ApiId a : cluster.apis) ++seen[a];
  }
  for (const auto& [api, count] : seen) EXPECT_EQ(count, 1) << "api " << api;

  // (2) Every API that touches an overloaded service is in some cluster.
  for (sim::ApiId a = 0; a < num_apis; ++a) {
    bool touches = false;
    for (const sim::ServiceId s : overloaded) touches = touches || registry.Uses(a, s);
    EXPECT_EQ(touches, seen.count(a) > 0) << "api " << a;
  }

  // (3) Overloaded services partition across clusters; each cluster's
  //     overloaded services are used only by that cluster's APIs.
  std::map<sim::ServiceId, int> service_seen;
  for (const auto& cluster : clusters) {
    std::set<sim::ApiId> members(cluster.apis.begin(), cluster.apis.end());
    for (const sim::ServiceId s : cluster.overloaded) {
      ++service_seen[s];
      for (const sim::ApiId user : registry.ApisOf(s)) {
        EXPECT_TRUE(members.count(user) > 0)
            << "service " << s << " used by out-of-cluster api " << user;
      }
    }
  }
  for (const auto& [s, count] : service_seen) EXPECT_EQ(count, 1) << "service " << s;

  // (4) The target is an overloaded service with the minimal API count.
  for (const auto& cluster : clusters) {
    int min_count = 1 << 30;
    for (const sim::ServiceId s : cluster.overloaded) {
      min_count = std::min(min_count, registry.ApiCount(s));
    }
    ASSERT_NE(cluster.target, sim::kNoService);
    EXPECT_EQ(registry.ApiCount(cluster.target), min_count);
    // Candidates = users of the target.
    EXPECT_EQ(cluster.candidates, registry.ApisOf(cluster.target));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringSweep, ::testing::Range<std::uint64_t>(1, 21));

// --- Request accounting conservation over random topologies ------------------

class ConservationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationSweep, OfferedSplitsExactly) {
  Rng rng(GetParam() * 4099);
  auto app = std::make_unique<sim::Application>("conserve", GetParam());
  const int num_services = static_cast<int>(rng.UniformInt(1, 6));
  for (int s = 0; s < num_services; ++s) {
    sim::ServiceConfig config;
    config.name = "s" + std::to_string(s);
    config.mean_service_ms = rng.Uniform(2.0, 30.0);
    config.threads = static_cast<int>(rng.UniformInt(1, 8));
    config.max_queue = static_cast<int>(rng.UniformInt(4, 64));  // tiny: force sheds
    app->AddService(config);
  }
  const int num_apis = static_cast<int>(rng.UniformInt(1, 4));
  for (int a = 0; a < num_apis; ++a) {
    sim::ApiSpec spec("api" + std::to_string(a), 1);
    std::set<sim::ServiceId> used;
    const int len = static_cast<int>(rng.UniformInt(1, num_services));
    while (static_cast<int>(used.size()) < len) {
      used.insert(static_cast<sim::ServiceId>(rng.UniformInt(0, num_services - 1)));
    }
    spec.AddPath(sim::ExecutionPath{
        sim::Chain(std::vector<sim::ServiceId>(used.begin(), used.end())), 1.0, {}});
    app->AddApi(std::move(spec));
  }
  app->Finalize();
  // Blast random traffic.
  for (int i = 0; i < 3000; ++i) {
    const SimTime at = static_cast<SimTime>(rng.UniformInt(0, Seconds(5)));
    const auto api = static_cast<sim::ApiId>(rng.UniformInt(0, num_apis - 1));
    app->sim().ScheduleAt(at, [&app, api]() { app->Submit(api); });
  }
  app->RunFor(Seconds(30));
  EXPECT_EQ(app->Inflight(), 0);
  std::uint64_t offered = 0;
  for (sim::ApiId a = 0; a < num_apis; ++a) {
    const auto& t = app->metrics().Totals()[a];
    EXPECT_EQ(t.offered, t.admitted + t.rejected_entry);
    EXPECT_EQ(t.admitted, t.completed + t.rejected_service);
    EXPECT_LE(t.good, t.completed);
    offered += t.offered;
  }
  EXPECT_EQ(offered, 3000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationSweep, ::testing::Range<std::uint64_t>(1, 17));

// --- GraphSimEnv invariants over seeds ----------------------------------------

class GraphEnvSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphEnvSweep, ObservationsBoundedRewardsFinite) {
  rl::GraphSimEnv env({}, 1234);
  Rng rng(GetParam());
  auto obs = env.Reset(GetParam());
  for (int t = 0; t < 50; ++t) {
    ASSERT_EQ(obs.size(), 2u);
    EXPECT_GE(obs[0], 0.0);
    EXPECT_LE(obs[0], 2.0);
    EXPECT_GE(obs[1], 0.0);
    EXPECT_LE(obs[1], rl::kMaxLatencyFactor);
    const auto r = env.Step(rng.Uniform(-0.5, 0.5));
    EXPECT_TRUE(std::isfinite(r.reward));
    EXPECT_GT(env.rate_limit(), 0.0);
    obs = r.obs;
    if (r.done) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphEnvSweep, ::testing::Range<std::uint64_t>(1, 25));

// --- MLP gradient check across architectures ----------------------------------

struct MlpArch {
  std::vector<int> sizes;
};

class MlpGradSweep : public ::testing::TestWithParam<MlpArch> {};

TEST_P(MlpGradSweep, AnalyticMatchesNumeric) {
  Rng rng(5);
  rl::Mlp net(GetParam().sizes, rng);
  std::vector<double> x(static_cast<std::size_t>(GetParam().sizes.front()));
  for (auto& v : x) v = rng.Uniform(-1, 1);
  // Scalar loss = sum of outputs.
  rl::Mlp::Cache cache;
  const auto y = net.Forward(x, &cache);
  net.ZeroGrad();
  net.Backward(cache, std::vector<double>(y.size(), 1.0));
  std::vector<double> analytic;
  net.CopyGradsTo(analytic);
  std::vector<double> params;
  net.CopyParamsTo(params);
  const double eps = 1e-6;
  Rng pick(GetParam().sizes.back() + 100);
  for (int check = 0; check < 25; ++check) {
    const auto i = static_cast<std::size_t>(
        pick.UniformInt(0, static_cast<std::int64_t>(params.size()) - 1));
    auto p = params;
    p[i] += eps;
    net.SetParams(p);
    double up = 0;
    for (const double v : net.Forward(x)) up += v;
    p[i] -= 2 * eps;
    net.SetParams(p);
    double down = 0;
    for (const double v : net.Forward(x)) down += v;
    net.SetParams(params);
    EXPECT_NEAR(analytic[i], (up - down) / (2 * eps), 1e-5) << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, MlpGradSweep,
                         ::testing::Values(MlpArch{{1, 1}}, MlpArch{{2, 8, 1}},
                                           MlpArch{{3, 16, 8, 2}},
                                           MlpArch{{2, 64, 64, 1}}));

// --- Rng forks are pairwise decorrelated --------------------------------------

class RngForkSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngForkSweep, SiblingStreamsLookIndependent) {
  Rng parent(GetParam());
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  // Crude correlation check on 2000 uniform draws.
  double sum_ab = 0, sum_a = 0, sum_b = 0, sum_a2 = 0, sum_b2 = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double x = a.NextDouble(), y = b.NextDouble();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
    sum_a2 += x * x;
    sum_b2 += y * y;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
  const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(corr), 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngForkSweep, ::testing::Range<std::uint64_t>(1, 9));

// --- Token bucket: piecewise admission bound + conservation -------------------

class TokenBucketConservationSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenBucketConservationSweep, AdmissionBoundedByBurstPlusRateIntegral) {
  Rng rng(GetParam() * 7919);
  const double initial_rate = rng.Uniform(5.0, 500.0);
  const double burst = rng.Uniform(1.0, 50.0);
  TokenBucket bucket(initial_rate, burst);

  // Over any sequence of rate changes, admissions are bounded by the
  // bucket depth plus the piecewise integral of the configured rate:
  //   admitted <= burst + sum_i rate_i * dt_i.
  double rate = initial_rate;
  double budget = bucket.burst();
  SimTime now = 0;
  int attempts = 0, admitted = 0, rejected = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.02)) {
      // Rate changes land exactly at the previous admission instant, the
      // boundary of the current refill segment.
      rate = rng.Uniform(0.0, 800.0);
      bucket.SetRate(rate);
    }
    const SimTime dt = rng.UniformInt(0, 2000);  // 0 = same-instant burst
    budget += rate * ToSeconds(dt);
    now += dt;
    ++attempts;
    if (bucket.TryAdmit(now)) {
      ++admitted;
    } else {
      ++rejected;
    }
    // The token pool stays within [0, burst] at all times. PeekTokens is a
    // pure read, so asserting here cannot perturb the admission stream.
    EXPECT_GE(bucket.PeekTokens(now), 0.0);
    EXPECT_LE(bucket.PeekTokens(now), bucket.burst());
  }
  EXPECT_EQ(admitted + rejected, attempts);
  EXPECT_LE(static_cast<double>(admitted), budget + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenBucketConservationSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Union-find: component structure independent of merge order ---------------

class UnionFindOrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionFindOrderSweep, ComponentsIndependentOfUnionOrder) {
  Rng rng(GetParam() * 4243);
  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 50));
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  const int count = static_cast<int>(rng.UniformInt(1, 100));
  for (int e = 0; e < count; ++e) {
    edges.emplace_back(
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(n) - 1)),
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(n) - 1)));
  }
  // Canonical component labelling: every node mapped to the sorted set of
  // nodes it is connected to.
  const auto components = [n](UnionFind& dsu) {
    std::vector<std::vector<std::size_t>> comp(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (dsu.Connected(i, j)) comp[i].push_back(j);
      }
    }
    return comp;
  };
  UnionFind forward(n);
  for (const auto& [a, b] : edges) forward.Union(a, b);
  // Shuffle the edge list (Fisher-Yates on the sweep's own stream).
  for (std::size_t i = edges.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(i) - 1));
    std::swap(edges[i - 1], edges[j]);
  }
  UnionFind shuffled(n);
  for (const auto& [a, b] : edges) shuffled.Union(a, b);
  EXPECT_EQ(components(forward), components(shuffled));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindOrderSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Clustering: result independent of overloaded-input permutation ----------

class ClusteringPermutationSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringPermutationSweep, ClustersIndependentOfOverloadOrder) {
  Rng rng(GetParam() * 569);
  const int num_services = static_cast<int>(rng.UniformInt(3, 20));
  const int num_apis = static_cast<int>(rng.UniformInt(2, 16));
  auto app = std::make_unique<sim::Application>("perm", GetParam());
  for (int s = 0; s < num_services; ++s) {
    sim::ServiceConfig config;
    config.name = "s" + std::to_string(s);
    app->AddService(config);
  }
  for (int a = 0; a < num_apis; ++a) {
    sim::ApiSpec spec("api" + std::to_string(a), 1);
    std::set<sim::ServiceId> used;
    const int len =
        static_cast<int>(rng.UniformInt(1, std::min(5, num_services)));
    while (static_cast<int>(used.size()) < len) {
      used.insert(static_cast<sim::ServiceId>(rng.UniformInt(0, num_services - 1)));
    }
    spec.AddPath(sim::ExecutionPath{
        sim::Chain(std::vector<sim::ServiceId>(used.begin(), used.end())), 1.0, {}});
    app->AddApi(std::move(spec));
  }
  app->Finalize();
  core::ApiRegistry registry(*app);

  std::vector<sim::ServiceId> overloaded;
  for (int s = 0; s < num_services; ++s) {
    if (rng.Bernoulli(0.4)) overloaded.push_back(s);
  }
  // Canonical form: clusters sorted by their (sorted) API lists.
  const auto canonical = [&](const std::vector<sim::ServiceId>& input) {
    auto clusters = core::BuildClusters(registry, input);
    std::vector<std::tuple<std::vector<sim::ApiId>, std::vector<sim::ServiceId>,
                           sim::ServiceId, std::vector<sim::ApiId>>>
        out;
    out.reserve(clusters.size());
    for (const auto& c : clusters) {
      out.emplace_back(c.apis, c.overloaded, c.target, c.candidates);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto baseline = canonical(overloaded);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<sim::ServiceId> permuted = overloaded;
    for (std::size_t i = permuted.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(permuted[i - 1], permuted[j]);
    }
    EXPECT_EQ(canonical(permuted), baseline) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringPermutationSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- ClusterTracker: history bookkeeping invariants ---------------------------

class ClusterTrackerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterTrackerSweep, HistoryCountsAndPartitionLabelsConsistent) {
  Rng rng(GetParam() * 1693);
  const int num_apis = static_cast<int>(rng.UniformInt(2, 12));
  core::ClusterTracker tracker(num_apis);
  int ticks = 0;
  for (int t = 0; t < 12; ++t) {
    // A random disjoint partition of a random API subset.
    std::vector<core::Cluster> clusters;
    std::vector<sim::ApiId> apis;
    for (sim::ApiId a = 0; a < num_apis; ++a) {
      if (rng.Bernoulli(0.6)) apis.push_back(a);
    }
    while (!apis.empty()) {
      core::Cluster cluster;
      const auto take = static_cast<std::size_t>(
          rng.UniformInt(1, static_cast<std::int64_t>(apis.size())));
      cluster.apis.assign(apis.end() - static_cast<std::ptrdiff_t>(take), apis.end());
      apis.resize(apis.size() - take);
      clusters.push_back(std::move(cluster));
    }
    tracker.Record(static_cast<double>(t), clusters);
    ++ticks;

    const auto& snap = tracker.History().back();
    EXPECT_EQ(snap.clusters, static_cast<int>(clusters.size()));
    EXPECT_EQ(static_cast<int>(snap.api_cluster.size()), num_apis);
    int members = 0;
    for (const int label : snap.api_cluster) {
      EXPECT_GE(label, -1);
      EXPECT_LT(label, static_cast<int>(clusters.size()));
      members += label >= 0 ? 1 : 0;
    }
    EXPECT_EQ(members, snap.member_apis);
    EXPECT_GE(snap.merges, 0);
    EXPECT_GE(snap.splits, 0);
  }
  EXPECT_EQ(static_cast<int>(tracker.History().size()), ticks);
  int merges = 0, splits = 0;
  for (const auto& snap : tracker.History()) {
    merges += snap.merges;
    splits += snap.splits;
  }
  EXPECT_EQ(tracker.TotalMerges(), merges);
  EXPECT_EQ(tracker.TotalSplits(), splits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterTrackerSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Retry amplification: span stream equals counters, bounded by policy -----
//
// Random retry/timeout configs on a small overloaded topology. Every
// dispatched hop attempt settles as exactly one span event (done or shed),
// so the span-stream attempt count must equal the engine's HopAttempts()
// counter, and the compound amplification factor computed from the raw
// counters must respect the closed-form policy bound
// (hop_retries + 1) * (client_retries + 1).

class AttemptCountingObserver : public sim::RequestObserver {
 public:
  void OnOffered(sim::ApiId, SimTime) override {}
  void OnEntryRejected(sim::ApiId, SimTime) override {}
  void OnAdmitted(sim::RequestId, sim::ApiId, SimTime) override {}
  bool Tracing(sim::RequestId) const override { return true; }
  void OnHopShed(sim::RequestId, sim::ServiceId, SimTime) override {
    ++shed_;
  }
  void OnHopDone(sim::RequestId, sim::ServiceId, SimTime, SimTime, SimTime,
                 bool) override {
    ++done_;
  }
  void OnRequestDone(sim::RequestId, sim::ApiId, SimTime, SimTime,
                     sim::Outcome, bool) override {}

  std::uint64_t attempts() const { return done_ + shed_; }

 private:
  std::uint64_t done_ = 0;
  std::uint64_t shed_ = 0;
};

class RetryAmplificationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetryAmplificationSweep, SpanStreamMatchesCountersWithinPolicyBound) {
  Rng rng(GetParam() * 2657);
  const int hop_retries = static_cast<int>(rng.UniformInt(0, 2));
  const int client_retries = static_cast<int>(rng.UniformInt(0, 3));
  const SimTime hop_timeout =
      Millis(static_cast<std::int64_t>(rng.UniformInt(60, 400)));
  const SimTime client_timeout =
      Millis(static_cast<std::int64_t>(rng.UniformInt(500, 2000)));

  // A 3-service chain with tight queues: overload produces timeouts and
  // sheds at both layers, exercising both retry amplifiers.
  auto app = std::make_unique<sim::Application>("amp", GetParam());
  for (int s = 0; s < 3; ++s) {
    sim::ServiceConfig config;
    config.name = "s" + std::to_string(s);
    config.mean_service_ms = rng.Uniform(5.0, 25.0);
    config.threads = 2;
    config.max_queue = static_cast<int>(rng.UniformInt(8, 48));
    app->AddService(config);
  }
  sim::ApiSpec spec("api0", 1);
  spec.AddPath(sim::ExecutionPath{sim::Chain({0, 1, 2}), 1.0, {}});
  app->AddApi(std::move(spec));
  app->Finalize();
  app->ConfigureRpc(hop_timeout, hop_retries, Millis(20));

  AttemptCountingObserver observer;
  app->SetObserver(&observer);

  // Overload for 8 s, then drain: users drop to zero and the run continues
  // until every in-flight attempt has settled.
  workload::ClosedLoopConfig config;
  config.mix.weights = {1.0};
  config.think = Millis(200);
  config.client_timeout = client_timeout;
  config.max_client_retries = client_retries;
  config.client_retry_backoff = Millis(50);
  workload::Schedule users = workload::Schedule::Constant(0.0);
  users.Then(0, rng.Uniform(40.0, 120.0));
  users.Then(Seconds(8), 0.0);
  workload::TrafficDriver driver(app.get());
  driver.AddClosedLoop(config, users);
  app->RunFor(Seconds(40));
  ASSERT_EQ(app->Inflight(), 0);

  // Span stream == engine counter: every dispatched attempt settled as
  // exactly one OnHopDone or OnHopShed.
  EXPECT_EQ(observer.attempts(), app->HopAttempts());

  std::uint64_t client_attempts = 0;
  std::uint64_t client_intents = 0;
  for (const workload::UserOutcomes& user : driver.pools()[0]->Outcomes()) {
    client_attempts += user.attempts;
    client_intents += user.intents;
    EXPECT_LE(user.ok + user.failed, user.intents);
    EXPECT_LE(user.intents, user.attempts);
    // Per-user closed form: at most 1 + retries submissions per intent.
    EXPECT_LE(user.attempts,
              user.intents * static_cast<std::uint64_t>(client_retries + 1));
  }
  ASSERT_GT(client_intents, 0u);

  const obs::AmplificationStats amp = obs::ComputeAmplification(
      app->HopAttempts(), app->Retries(), client_attempts, client_intents);
  EXPECT_DOUBLE_EQ(amp.total,
                   amp.hop_amplification * amp.client_amplification);
  // Closed-form policy bounds on each factor and the compound.
  EXPECT_GE(amp.hop_amplification, 1.0);
  EXPECT_LE(amp.hop_amplification, static_cast<double>(hop_retries + 1) + 1e-9);
  EXPECT_GE(amp.client_amplification, 1.0);
  EXPECT_LE(amp.client_amplification,
            static_cast<double>(client_retries + 1) + 1e-9);
  EXPECT_LE(amp.total, static_cast<double>((hop_retries + 1) *
                                           (client_retries + 1)) +
                           1e-9);
  // The counters the factors derive from reconcile exactly.
  EXPECT_EQ(amp.hop_attempts - amp.server_retries,
            app->HopAttempts() - app->Retries());
  // A zero-retry policy admits no amplification at all.
  if (hop_retries == 0) EXPECT_DOUBLE_EQ(amp.hop_amplification, 1.0);
  if (client_retries == 0) EXPECT_DOUBLE_EQ(amp.client_amplification, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryAmplificationSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Sharded DES: conservative lookahead never violates causality ------------
//
// Random message chains bounce between two shards with randomised
// cross-shard latencies (>= the lookahead). Every execution is compared
// against a single-simulation reference that runs the same chains on one
// engine: per-(virtual-)shard execution sequences must match exactly, and
// in the sharded run no event may observe a receiver clock earlier than its
// own timestamp — i.e. no event executes before a causally-earlier
// cross-shard message has been delivered.

class ShardedCausalitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedCausalitySweep, MatchesSingleSimReferenceAndDeliversOnTime) {
  Rng rng(GetParam() * 0x51A2DE5ULL + 3);
  const SimTime lookahead = static_cast<SimTime>(rng.UniformInt(200, 3000));
  const int num_chains = static_cast<int>(rng.UniformInt(5, 40));
  const SimTime end = Seconds(2);

  // Pre-generate the chains so the sharded run and the reference replay
  // exactly the same structure: chain c starts on shard s0 at t0 and hops
  // shard-to-shard with per-hop latency >= lookahead.
  struct ChainSpec {
    int start_shard;
    std::vector<SimTime> times;  // execution time of hop k
  };
  std::vector<ChainSpec> chains;
  for (int c = 0; c < num_chains; ++c) {
    ChainSpec spec;
    spec.start_shard = static_cast<int>(rng.UniformInt(0, 1));
    SimTime t = static_cast<SimTime>(rng.UniformInt(0, Seconds(1)));
    const int hops = static_cast<int>(rng.UniformInt(1, 12));
    for (int k = 0; k < hops; ++k) {
      spec.times.push_back(t);
      // Cross-shard latency: lookahead plus random slack.
      t += lookahead + static_cast<SimTime>(rng.UniformInt(0, 2 * lookahead));
    }
    chains.push_back(std::move(spec));
  }

  using Log = std::vector<std::vector<std::tuple<SimTime, int, int>>>;

  // Sharded execution.
  Log sharded(2);
  {
    des::ShardedSimulation::Options options;
    options.lookahead = lookahead;
    options.threaded = (GetParam() % 2) == 0;  // alternate execution modes
    des::ShardedSimulation net(2, options);
    struct Runner {
      des::ShardedSimulation* net;
      const std::vector<ChainSpec>* chains;
      Log* log;
      void Hop(int chain, std::size_t k) {
        const ChainSpec& spec = (*chains)[static_cast<std::size_t>(chain)];
        const int shard = (spec.start_shard + static_cast<int>(k)) % 2;
        const SimTime now = net->shard(shard).Now();
        // Causality: the hop must run exactly at its timestamp — never
        // before its predecessor's message has been delivered.
        ASSERT_EQ(now, spec.times[k]);
        (*log)[static_cast<std::size_t>(shard)].emplace_back(
            now, chain, static_cast<int>(k));
        if (k + 1 < spec.times.size()) {
          auto* self = this;
          net->Post(shard, 1 - shard, spec.times[k + 1],
                    [self, chain, k] { self->Hop(chain, k + 1); });
        }
      }
    };
    Runner runner{&net, &chains, &sharded};
    for (int c = 0; c < num_chains; ++c) {
      const auto& spec = chains[static_cast<std::size_t>(c)];
      net.shard(spec.start_shard)
          .ScheduleAt(spec.times[0], [&runner, c] { runner.Hop(c, 0); });
    }
    net.RunUntil(end);
  }

  // Single-simulation reference: same chains, hops scheduled directly.
  Log reference(2);
  {
    des::Simulation sim;
    struct Runner {
      des::Simulation* sim;
      const std::vector<ChainSpec>* chains;
      Log* log;
      void Hop(int chain, std::size_t k) {
        const ChainSpec& spec = (*chains)[static_cast<std::size_t>(chain)];
        const int shard = (spec.start_shard + static_cast<int>(k)) % 2;
        (*log)[static_cast<std::size_t>(shard)].emplace_back(
            sim->Now(), chain, static_cast<int>(k));
        if (k + 1 < spec.times.size()) {
          auto* self = this;
          sim->ScheduleAt(spec.times[k + 1],
                          [self, chain, k] { self->Hop(chain, k + 1); });
        }
      }
    };
    Runner runner{&sim, &chains, &reference};
    for (int c = 0; c < num_chains; ++c) {
      const auto& spec = chains[static_cast<std::size_t>(c)];
      sim.ScheduleAt(spec.times[0], [&runner, c] { runner.Hop(c, 0); });
    }
    sim.RunUntil(end);
  }

  // Same-timestamp hops on one shard may interleave differently between
  // the sharded engine (mailbox drain order) and the reference (schedule
  // order); stable-sort by time keeps equal-time groups comparable as sets.
  for (auto* log : {&sharded, &reference}) {
    for (auto& entries : *log) {
      std::stable_sort(entries.begin(), entries.end());
    }
  }
  ASSERT_EQ(sharded[0], reference[0]);
  ASSERT_EQ(sharded[1], reference[1]);
  // Per-shard clocks never regress (monotone logs after sort == before).
  for (const auto& entries : sharded) {
    for (std::size_t i = 1; i < entries.size(); ++i) {
      EXPECT_GE(std::get<0>(entries[i]), std::get<0>(entries[i - 1]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedCausalitySweep,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace topfull

// Golden tests for the PromQL-subset engine and the rule/alert machinery:
// rate across counter resets, covered-span semantics, aggregations,
// histogram_quantile vs Histogram::Percentile, range matrices, the alert
// state machine, and the /query HTTP surface.
#include "obs/query.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/rules.hpp"
#include "obs/snapshot.hpp"
#include "obs/tsdb.hpp"
#include "obs/tsdb_plane.hpp"

namespace topfull {
namespace {

using obs::EvalInstant;
using obs::EvalRange;
using obs::QueryResult;

/// One-series instant result -> its value.
double Scalar1(const QueryResult& result) {
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.series.size(), 1u);
  EXPECT_EQ(result.series[0].points.size(), 1u);
  return result.series[0].points[0].value;
}

TEST(QueryTest, ScalarArithmeticAndComparison) {
  obs::Tsdb tsdb;
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "1 + 2 * 3", 0.0)), 7.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "(1 + 2) * 3", 0.0)), 9.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "-(4 / 2)", 0.0)), -2.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "1 < 2", 0.0)), 1.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "2 == 3", 0.0)), 0.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "3 >= 3", 0.0)), 1.0);

  const QueryResult bad = EvalInstant(tsdb, "1 +", 0.0);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("parse error"), std::string::npos);
  EXPECT_FALSE(EvalInstant(tsdb, "rate(1)", 0.0).ok);
}

TEST(QueryTest, InstantSelectorTakesLatestSampleWithinLookback) {
  obs::Tsdb tsdb;
  for (double t = 1.0; t <= 5.0; t += 1.0) {
    tsdb.Append("m", {{"api", "a"}}, obs::MetricType::kGauge, t, t * 10.0);
  }
  const QueryResult hit = EvalInstant(tsdb, "m", 5.5);
  ASSERT_TRUE(hit.ok);
  ASSERT_EQ(hit.series.size(), 1u);
  EXPECT_EQ(hit.series[0].points[0].value, 50.0);
  // The result carries the evaluation time, not the sample's own stamp.
  EXPECT_EQ(hit.series[0].points[0].t_s, 5.5);

  // Past the 10 s lookback the series goes stale and drops out.
  const QueryResult stale = EvalInstant(tsdb, "m", 20.0);
  ASSERT_TRUE(stale.ok);
  EXPECT_TRUE(stale.series.empty());
}

TEST(QueryTest, LabelMatchersSelectSeries) {
  obs::Tsdb tsdb;
  for (const char* api : {"cart", "checkout", "search"}) {
    tsdb.Append("m", {{"api", api}}, obs::MetricType::kGauge, 1.0, 1.0);
  }
  const auto count = [&tsdb](const std::string& expr) {
    const QueryResult result = EvalInstant(tsdb, expr, 1.0);
    EXPECT_TRUE(result.ok) << result.error;
    return result.series.size();
  };
  EXPECT_EQ(count("m"), 3u);
  EXPECT_EQ(count("m{api=\"cart\"}"), 1u);
  EXPECT_EQ(count("m{api!=\"cart\"}"), 2u);
  EXPECT_EQ(count("m{api=~\"c.*\"}"), 2u);
  EXPECT_EQ(count("m{api!~\"c.*\"}"), 1u);
  EXPECT_EQ(count("m{api=\"cart\",api=~\".*t\"}"), 1u);
  // A missing label matches as the empty string.
  EXPECT_EQ(count("m{zone=\"\"}"), 3u);
  EXPECT_FALSE(EvalInstant(tsdb, "m{api=~\"(\"}", 1.0).ok);
}

// A counter reset must not produce a negative rate: the post-reset value
// counts as fresh increase, matching Prometheus semantics.
TEST(QueryTest, RateAndIncreaseCompensateForCounterResets) {
  obs::Tsdb tsdb;
  const double values[] = {0, 10, 20, 30, 40, 5, 15, 25, 35, 45, 55};
  for (int i = 0; i < 11; ++i) {
    tsdb.Append("c_total", {}, obs::MetricType::kCounter,
                static_cast<double>(i), values[i]);
  }
  // Deltas: 4 x +10, reset contributes the post-reset value 5, then
  // 5 x +10 -> increase 95 over the 10 s covered span.
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "increase(c_total[20s])", 10.0)), 95.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "rate(c_total[20s])", 10.0)), 9.5);
  EXPECT_EQ(tsdb.stats().counter_resets, 1u);
}

TEST(QueryTest, RateDividesByCoveredSpanNotTheNominalWindow) {
  obs::Tsdb tsdb;
  tsdb.Append("c_total", {}, obs::MetricType::kCounter, 8.0, 0.0);
  tsdb.Append("c_total", {}, obs::MetricType::kCounter, 9.0, 10.0);
  tsdb.Append("c_total", {}, obs::MetricType::kCounter, 10.0, 20.0);
  // Only 2 s of the 100 s window hold samples; the rate is 20/2, not
  // 20/100.
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "rate(c_total[100s])", 10.0)), 10.0);
}

TEST(QueryTest, RateNeedsAtLeastTwoSamples) {
  obs::Tsdb tsdb;
  tsdb.Append("c_total", {}, obs::MetricType::kCounter, 1.0, 5.0);
  const QueryResult result = EvalInstant(tsdb, "rate(c_total[10s])", 1.0);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.series.empty());
  // An empty window is empty output, not an error.
  const QueryResult empty = EvalInstant(tsdb, "rate(c_total[10s])", 500.0);
  ASSERT_TRUE(empty.ok);
  EXPECT_TRUE(empty.series.empty());
}

TEST(QueryTest, OverTimeAggregationsMatchHandComputation) {
  obs::Tsdb tsdb;
  const double values[] = {4.0, 1.0, 3.0, 2.0};
  for (int i = 0; i < 4; ++i) {
    tsdb.Append("g", {}, obs::MetricType::kGauge, 1.0 + i, values[i]);
  }
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "avg_over_time(g[10s])", 4.0)), 2.5);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "sum_over_time(g[10s])", 4.0)), 10.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "min_over_time(g[10s])", 4.0)), 1.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "max_over_time(g[10s])", 4.0)), 4.0);
  // The window is half-open (t-range, t]: at t=2 only samples 1..2 count.
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "sum_over_time(g[1s])", 2.0)), 1.0);
}

TEST(QueryTest, AggregationsGroupByLabels) {
  obs::Tsdb tsdb;
  tsdb.Append("m", {{"api", "a"}, {"code", "200"}}, obs::MetricType::kGauge,
              1.0, 1.0);
  tsdb.Append("m", {{"api", "a"}, {"code", "500"}}, obs::MetricType::kGauge,
              1.0, 2.0);
  tsdb.Append("m", {{"api", "b"}, {"code", "200"}}, obs::MetricType::kGauge,
              1.0, 4.0);

  const QueryResult total = EvalInstant(tsdb, "sum(m)", 1.0);
  ASSERT_TRUE(total.ok);
  ASSERT_EQ(total.series.size(), 1u);
  EXPECT_TRUE(total.series[0].labels.empty());
  EXPECT_EQ(total.series[0].points[0].value, 7.0);

  const QueryResult by_api = EvalInstant(tsdb, "sum by(api) (m)", 1.0);
  ASSERT_TRUE(by_api.ok);
  ASSERT_EQ(by_api.series.size(), 2u);
  EXPECT_EQ(by_api.series[0].labels[0].second, "a");
  EXPECT_EQ(by_api.series[0].points[0].value, 3.0);
  EXPECT_EQ(by_api.series[1].points[0].value, 4.0);

  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "avg(m)", 1.0)), 7.0 / 3.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "min(m)", 1.0)), 1.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "max(m)", 1.0)), 4.0);
}

TEST(QueryTest, ComparisonsFilterVectorsAndBinopsJoinOnLabels) {
  obs::Tsdb tsdb;
  tsdb.Append("m", {{"api", "a"}}, obs::MetricType::kGauge, 1.0, 3.0);
  tsdb.Append("m", {{"api", "b"}}, obs::MetricType::kGauge, 1.0, 8.0);
  tsdb.Append("n", {{"api", "a"}}, obs::MetricType::kGauge, 1.0, 10.0);

  // vector-scalar comparison keeps matching elements with their values.
  const QueryResult gt = EvalInstant(tsdb, "m > 5", 1.0);
  ASSERT_TRUE(gt.ok);
  ASSERT_EQ(gt.series.size(), 1u);
  EXPECT_EQ(gt.series[0].labels[0].second, "b");
  EXPECT_EQ(gt.series[0].points[0].value, 8.0);

  const QueryResult scaled = EvalInstant(tsdb, "m * 2", 1.0);
  ASSERT_TRUE(scaled.ok);
  ASSERT_EQ(scaled.series.size(), 2u);
  EXPECT_EQ(scaled.series[0].points[0].value, 6.0);

  // vector-vector join on exact label sets: only api="a" exists on both
  // sides.
  const QueryResult joined = EvalInstant(tsdb, "n - m", 1.0);
  ASSERT_TRUE(joined.ok);
  ASSERT_EQ(joined.series.size(), 1u);
  EXPECT_EQ(joined.series[0].labels[0].second, "a");
  EXPECT_EQ(joined.series[0].points[0].value, 7.0);
}

// The engine's bucket interpolation and the histogram's own Percentile
// are independent estimators of the same quantile; each is documented to
// be within one sub-bucket of truth, so they agree within two.
TEST(QueryTest, HistogramQuantileTracksHistogramPercentile) {
  obs::MetricsRegistry registry;
  const obs::HistogramConfig config{0.125, 1024.0, 8};
  auto* histogram = registry.GetHistogram("lat_ms", "Latency.", {}, config);
  for (int i = 0; i < 800; ++i) {
    histogram->Record(1.0 + 0.37 * static_cast<double>(i));
  }

  obs::SnapshotBuilder builder;
  builder.AddRegistry(registry);
  obs::Tsdb tsdb;
  tsdb.AppendSnapshot(*builder.Finish(), 1.0);

  for (const double p : {50.0, 90.0, 99.0}) {
    const double expected = histogram->Percentile(p);
    const double actual = Scalar1(EvalInstant(
        tsdb,
        "histogram_quantile(0." + std::to_string(static_cast<int>(p * 10)) +
            ", lat_ms_bucket)",
        1.0));
    EXPECT_NEAR(actual, expected, expected * 2.0 / config.sub_buckets)
        << "p" << p;
  }
}

TEST(QueryTest, HistogramQuantileEdgeCases) {
  obs::Tsdb tsdb;
  tsdb.Append("h_bucket", {{"le", "1"}}, obs::MetricType::kCounter, 1.0, 4.0);
  tsdb.Append("h_bucket", {{"le", "+Inf"}}, obs::MetricType::kCounter, 1.0,
              4.0);
  // phi out of range -> NaN, not an error.
  const QueryResult bad_phi =
      EvalInstant(tsdb, "histogram_quantile(2, h_bucket)", 1.0);
  ASSERT_TRUE(bad_phi.ok);
  ASSERT_EQ(bad_phi.series.size(), 1u);
  EXPECT_TRUE(std::isnan(bad_phi.series[0].points[0].value));
  // Interpolation within the first bucket starts from 0.
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "histogram_quantile(0.5, h_bucket)",
                                1.0)),
            0.5);
  // A series without the +Inf bucket is not a conformant histogram.
  obs::Tsdb partial;
  partial.Append("h_bucket", {{"le", "1"}}, obs::MetricType::kCounter, 1.0,
                 4.0);
  const QueryResult skipped =
      EvalInstant(partial, "histogram_quantile(0.5, h_bucket)", 1.0);
  ASSERT_TRUE(skipped.ok);
  EXPECT_TRUE(skipped.series.empty());
  EXPECT_FALSE(EvalInstant(tsdb, "histogram_quantile(0.5)", 1.0).ok);
}

TEST(QueryTest, RangeQueriesMergeStepsIntoAMatrix) {
  obs::Tsdb tsdb;
  for (double t = 1.0; t <= 5.0; t += 1.0) {
    tsdb.Append("g", {}, obs::MetricType::kGauge, t, t);
  }
  const QueryResult matrix = EvalRange(tsdb, "g", 1.0, 5.0, 2.0);
  ASSERT_TRUE(matrix.ok) << matrix.error;
  EXPECT_EQ(matrix.type, QueryResult::Type::kMatrix);
  ASSERT_EQ(matrix.series.size(), 1u);
  ASSERT_EQ(matrix.series[0].points.size(), 3u);
  EXPECT_EQ(matrix.series[0].points[0].t_s, 1.0);
  EXPECT_EQ(matrix.series[0].points[2].t_s, 5.0);
  EXPECT_EQ(matrix.series[0].points[2].value, 5.0);

  // Scalar expressions evaluate per step too.
  const QueryResult scalars = EvalRange(tsdb, "1 + 1", 0.0, 2.0, 1.0);
  ASSERT_TRUE(scalars.ok);
  ASSERT_EQ(scalars.series.size(), 1u);
  EXPECT_EQ(scalars.series[0].points.size(), 3u);

  EXPECT_FALSE(EvalRange(tsdb, "g", 5.0, 1.0, 1.0).ok);
  EXPECT_FALSE(EvalRange(tsdb, "g", 1.0, 5.0, 0.0).ok);
  // A raw range vector has no single value per step.
  EXPECT_FALSE(EvalRange(tsdb, "g[10s]", 1.0, 5.0, 1.0).ok);
}

TEST(QueryTest, ResultJsonFormsAreWellFormed) {
  obs::Tsdb tsdb;
  tsdb.Append("m", {{"api", "a"}}, obs::MetricType::kGauge, 1.0, 2.5);

  const std::string scalar =
      obs::QueryResultJson(EvalInstant(tsdb, "41 + 1", 1.0));
  EXPECT_NE(scalar.find("\"resultType\":\"scalar\""), std::string::npos);
  EXPECT_NE(scalar.find("[1,\"42\"]"), std::string::npos);

  const std::string vector = obs::QueryResultJson(EvalInstant(tsdb, "m", 1.0));
  EXPECT_NE(vector.find("\"resultType\":\"vector\""), std::string::npos);
  EXPECT_NE(vector.find("\"metric\":{\"api\":\"a\"}"), std::string::npos);

  const std::string matrix =
      obs::QueryResultJson(EvalRange(tsdb, "m", 1.0, 1.0, 1.0));
  EXPECT_NE(matrix.find("\"resultType\":\"matrix\""), std::string::npos);

  const std::string error =
      obs::QueryResultJson(EvalInstant(tsdb, "nope(", 1.0));
  EXPECT_NE(error.find("\"status\":\"error\""), std::string::npos);

  // All four forms parse as JSON (values are strings, Prometheus-style,
  // so non-finite numbers can never corrupt the document).
  for (const std::string& body : {scalar, vector, matrix, error}) {
    obs::JsonValue doc;
    std::string parse_error;
    EXPECT_TRUE(obs::ParseJson(body, &doc, &parse_error))
        << parse_error << "\n"
        << body;
  }
}

// --- Rules -------------------------------------------------------------------

TEST(RulesTest, AlertWalksInactivePendingFiringAndBack) {
  obs::Tsdb tsdb;
  obs::RuleEngine engine(&tsdb);
  obs::AlertRule rule;
  rule.name = "sig_high";
  rule.exprs = {"sig > 0"};
  rule.for_s = 2.0;
  engine.AddAlert(std::move(rule));

  const double values[] = {0, 0, 0, 1, 1, 1, 1, 1, 0};
  for (int i = 0; i < 9; ++i) {
    const double t = 1.0 + i;
    tsdb.Append("sig", {}, obs::MetricType::kGauge, t, values[i]);
    engine.Evaluate(t);
  }
  const auto& transitions = engine.transitions();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].t_s, 4.0);
  EXPECT_EQ(transitions[0].from, obs::AlertState::kInactive);
  EXPECT_EQ(transitions[0].to, obs::AlertState::kPending);
  EXPECT_EQ(transitions[1].t_s, 6.0);  // held for for_s=2 before firing
  EXPECT_EQ(transitions[1].to, obs::AlertState::kFiring);
  EXPECT_EQ(transitions[2].t_s, 9.0);
  EXPECT_EQ(transitions[2].to, obs::AlertState::kInactive);
  EXPECT_EQ(engine.last_eval_s(), 9.0);
}

TEST(RulesTest, ZeroHoldAlertsFireImmediately) {
  obs::Tsdb tsdb;
  obs::RuleEngine engine(&tsdb);
  obs::AlertRule rule;
  rule.name = "instant";
  rule.exprs = {"sig > 0"};
  rule.for_s = 0.0;
  engine.AddAlert(std::move(rule));
  tsdb.Append("sig", {}, obs::MetricType::kGauge, 1.0, 1.0);
  engine.Evaluate(1.0);
  ASSERT_EQ(engine.transitions().size(), 1u);
  EXPECT_EQ(engine.transitions()[0].to, obs::AlertState::kFiring);
}

// Multi-window burn alerts AND their expressions: the short window alone
// must not page.
TEST(RulesTest, MultiWindowAlertNeedsEveryExpressionTrue) {
  obs::Tsdb tsdb;
  obs::RuleEngine engine(&tsdb);
  obs::AlertRule rule;
  rule.name = "both";
  rule.exprs = {"fast > 0", "slow > 0"};
  rule.for_s = 0.0;
  engine.AddAlert(std::move(rule));

  tsdb.Append("fast", {}, obs::MetricType::kGauge, 1.0, 1.0);
  tsdb.Append("slow", {}, obs::MetricType::kGauge, 1.0, 0.0);
  engine.Evaluate(1.0);
  EXPECT_TRUE(engine.transitions().empty());

  tsdb.Append("fast", {}, obs::MetricType::kGauge, 2.0, 1.0);
  tsdb.Append("slow", {}, obs::MetricType::kGauge, 2.0, 1.0);
  engine.Evaluate(2.0);
  ASSERT_EQ(engine.transitions().size(), 1u);
  EXPECT_EQ(engine.transitions()[0].to, obs::AlertState::kFiring);
}

TEST(RulesTest, RecordingRulesAppendDerivedSeries) {
  obs::Tsdb tsdb;
  obs::RuleEngine engine(&tsdb);
  obs::RecordingRule recording;
  recording.name = "job:m:sum";
  recording.expr = "sum(m)";
  engine.AddRecording(std::move(recording));

  tsdb.Append("m", {{"api", "a"}}, obs::MetricType::kGauge, 1.0, 2.0);
  tsdb.Append("m", {{"api", "b"}}, obs::MetricType::kGauge, 1.0, 3.0);
  engine.Evaluate(1.0);
  EXPECT_EQ(Scalar1(EvalInstant(tsdb, "job:m:sum", 1.0)), 5.0);
}

TEST(RulesTest, GoodputFloorRuleFiresOnlyBelowTheFloor) {
  // Starved store: goodput grows at 10 rps against a 100 rps floor.
  obs::Tsdb starved;
  obs::RuleEngine paging(&starved);
  paging.AddAlert(obs::GoodputFloorRule(100.0, /*for_s=*/2.0));
  // Healthy store: 200 rps clears the floor comfortably.
  obs::Tsdb healthy;
  obs::RuleEngine quiet(&healthy);
  quiet.AddAlert(obs::GoodputFloorRule(100.0, /*for_s=*/2.0));

  for (double t = 0.0; t <= 10.0; t += 1.0) {
    starved.Append("topfull_requests_good_total", {},
                   obs::MetricType::kCounter, t, 10.0 * t);
    healthy.Append("topfull_requests_good_total", {},
                   obs::MetricType::kCounter, t, 200.0 * t);
    if (t > 0.0) {
      paging.Evaluate(t);
      quiet.Evaluate(t);
    }
  }
  bool fired = false;
  for (const obs::AlertTransition& tr : paging.transitions()) {
    fired |= tr.to == obs::AlertState::kFiring;
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(quiet.transitions().empty());
}

TEST(RulesTest, SloBurnRulesPageOnBadFractionAndStayQuietOtherwise) {
  obs::Tsdb burning;
  obs::RuleEngine paging(&burning);
  obs::Tsdb fine;
  obs::RuleEngine quiet(&fine);
  for (obs::AlertRule& rule : obs::SloBurnRules()) {
    paging.AddAlert(rule);
    quiet.AddAlert(std::move(rule));
  }

  for (double t = 0.0; t <= 12.0; t += 1.0) {
    // Burning: half of all completions are bad (way past a 1% budget).
    burning.Append("topfull_requests_completed_total", {},
                   obs::MetricType::kCounter, t, 100.0 * t);
    burning.Append("topfull_requests_good_total", {},
                   obs::MetricType::kCounter, t, 50.0 * t);
    // Fine: everything succeeds.
    fine.Append("topfull_requests_completed_total", {},
                obs::MetricType::kCounter, t, 100.0 * t);
    fine.Append("topfull_requests_good_total", {},
                obs::MetricType::kCounter, t, 100.0 * t);
    if (t > 0.0) {
      paging.Evaluate(t);
      quiet.Evaluate(t);
    }
  }
  bool fast_fired = false;
  for (const obs::AlertTransition& tr : paging.transitions()) {
    fast_fired |= tr.rule == "slo_fast_burn" &&
                  tr.to == obs::AlertState::kFiring;
  }
  EXPECT_TRUE(fast_fired);
  EXPECT_TRUE(quiet.transitions().empty());

  // The alerts document stays valid JSON even with extreme values.
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(paging.AlertsJson(), &doc, &error)) << error;
}

TEST(RulesTest, NonFiniteAlertValuesStayValidJson) {
  obs::Tsdb tsdb;
  obs::RuleEngine engine(&tsdb);
  obs::AlertRule rule;
  rule.name = "div_zero";
  rule.exprs = {"1 / 0"};  // scalar +inf: truthy, and the recorded value
  rule.for_s = 0.0;
  engine.AddAlert(std::move(rule));
  engine.Evaluate(1.0);
  const std::string json = engine.AlertsJson();
  EXPECT_NE(json.find("\"inf\""), std::string::npos);
  obs::JsonValue doc;
  std::string error;
  EXPECT_TRUE(obs::ParseJson(json, &doc, &error)) << error << "\n" << json;
}

// --- The /query HTTP surface -------------------------------------------------

obs::HttpResponse Query(const obs::Tsdb& tsdb, const std::string& target) {
  obs::HttpRequest request;
  request.method = "GET";
  request.target = target;
  return obs::HandleQueryRequest(request, tsdb);
}

TEST(QueryHttpTest, ServesInstantAndRangeQueries) {
  obs::Tsdb tsdb;
  tsdb.Append("m", {{"api", "a"}}, obs::MetricType::kGauge, 5.0, 7.0);

  // Instant defaults to the store's latest sample time.
  const obs::HttpResponse instant = Query(tsdb, "/query?expr=m");
  EXPECT_EQ(instant.status, 200);
  EXPECT_EQ(instant.content_type, "application/json");
  EXPECT_NE(instant.body.find("[5,\"7\"]"), std::string::npos);

  // %-encoded expressions decode before parsing; `query=` is an alias.
  const obs::HttpResponse encoded =
      Query(tsdb, "/query?query=sum%28m%29&time=5");
  EXPECT_EQ(encoded.status, 200);
  EXPECT_NE(encoded.body.find("\"7\""), std::string::npos);

  const obs::HttpResponse range =
      Query(tsdb, "/query?expr=m&start=5&end=6&step=1");
  EXPECT_EQ(range.status, 200);
  EXPECT_NE(range.body.find("\"resultType\":\"matrix\""), std::string::npos);

  // An explicit time past the lookback yields an empty vector, not 404.
  const obs::HttpResponse empty = Query(tsdb, "/query?expr=m&time=100");
  EXPECT_EQ(empty.status, 200);
  EXPECT_NE(empty.body.find("\"result\":[]"), std::string::npos);
}

TEST(QueryHttpTest, RejectsBadRequestsWithTheJsonErrorEnvelope) {
  obs::Tsdb tsdb;
  const struct {
    const char* target;
    const char* expected;
  } cases[] = {
      {"/query", "missing expr parameter"},
      {"/query?expr=m&start=1&end=2", "numeric start, end and step"},
      {"/query?expr=m&start=1&end=2&step=0", "step must be positive"},
      {"/query?expr=m&start=9&end=2&step=1", "end precedes start"},
      {"/query?expr=m&time=yesterday", "bad time parameter"},
      {"/query?expr=m%7B", "parse error"},
  };
  for (const auto& c : cases) {
    const obs::HttpResponse response = Query(tsdb, c.target);
    EXPECT_EQ(response.status, 400) << c.target;
    EXPECT_NE(response.body.find("\"status\":\"error\""), std::string::npos)
        << c.target;
    EXPECT_NE(response.body.find(c.expected), std::string::npos)
        << c.target << ": " << response.body;
    obs::JsonValue doc;
    std::string error;
    EXPECT_TRUE(obs::ParseJson(response.body, &doc, &error)) << response.body;
  }
}

}  // namespace
}  // namespace topfull

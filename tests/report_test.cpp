// Tests for the report layer: the JSON parser, metric-path flattening,
// direction inference and run-summary regression diffing.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/controller.hpp"
#include "core/rate_controller.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/slo_monitor.hpp"
#include "workload/generators.hpp"

namespace topfull {
namespace {

obs::JsonValue Parse(const std::string& text) {
  obs::JsonValue value;
  std::string error;
  EXPECT_TRUE(obs::ParseJson(text, &value, &error)) << error;
  return value;
}

// --- JSON parser -------------------------------------------------------------

TEST(ReportTest, JsonParserHandlesTheFullValueGrammar) {
  const obs::JsonValue doc = Parse(
      R"({"s": "a\"b\\c\nd", "n": -1.25e2, "b": true, "z": null,)"
      R"( "arr": [1, [2]], "nested": {"k": 0}})");
  ASSERT_TRUE(doc.IsObject());
  EXPECT_EQ(doc.Find("s")->string, "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(doc.Find("n")->number, -125.0);
  EXPECT_TRUE(doc.Find("b")->boolean);
  EXPECT_TRUE(doc.Find("z")->IsNull());
  ASSERT_TRUE(doc.Find("arr")->IsArray());
  EXPECT_DOUBLE_EQ(doc.Find("arr")->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(doc.Find("arr")->array[1].array[0].number, 2.0);
  EXPECT_DOUBLE_EQ(doc.Find("nested")->Find("k")->number, 0.0);
  EXPECT_EQ(doc.Find("absent"), nullptr);
}

TEST(ReportTest, JsonParserDecodesUnicodeEscapes) {
  const obs::JsonValue doc = Parse(R"({"a": "A", "emoji": "😀"})");
  EXPECT_EQ(doc.Find("a")->string, "A");
  EXPECT_EQ(doc.Find("emoji")->string, "\xF0\x9F\x98\x80");  // U+1F600
}

TEST(ReportTest, JsonParserReportsErrors) {
  obs::JsonValue value;
  std::string error;
  EXPECT_FALSE(obs::ParseJson("{\"a\": }", &value, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::ParseJson("[1, 2] trailing", &value, &error));
  EXPECT_FALSE(obs::ParseJson("", &value, &error));
}

// --- Flattening --------------------------------------------------------------

TEST(ReportTest, FlattenNumbersYieldsDottedPathsForNumericLeaves) {
  const obs::JsonValue doc = Parse(
      R"({"a": {"b": 2.5}, "arr": [7, true, "skip"], "s": "skip", "z": null})");
  std::map<std::string, double> flat;
  obs::FlattenNumbers(doc, "", &flat);
  const std::map<std::string, double> expected = {
      {"a.b", 2.5}, {"arr.0", 7.0}, {"arr.1", 1.0}};
  EXPECT_EQ(flat, expected);
}

// --- Direction inference -----------------------------------------------------

TEST(ReportTest, DirectionOfClassifiesSummaryPaths) {
  using obs::MetricDirection;
  EXPECT_EQ(obs::DirectionOf("total.goodput_rps"), MetricDirection::kHigherBetter);
  EXPECT_EQ(obs::DirectionOf("services.B.capacity_rps"),
            MetricDirection::kHigherBetter);
  EXPECT_EQ(obs::DirectionOf("total.counters.good"), MetricDirection::kHigherBetter);
  EXPECT_EQ(obs::DirectionOf("apis.api0.latency_ms.p95"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(obs::DirectionOf("services.B.queue_delay_ms.p99"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(obs::DirectionOf("total.counters.rejected_entry"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(obs::DirectionOf("events.by_type.slo_burn_start"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(obs::DirectionOf("sim_end_s"), MetricDirection::kNeutral);
  EXPECT_EQ(obs::DirectionOf("controller.ticks"), MetricDirection::kNeutral);
}

// --- Regression diffing ------------------------------------------------------

TEST(ReportTest, CompareFlagsOnlyDirectionalMovesBeyondTolerance) {
  const obs::JsonValue baseline = Parse(
      R"({"total": {"goodput_rps": 100.0, "latency_ms": {"p95": 50.0}},)"
      R"( "apis": {"x": {"counters": {"completed": 1000}}},)"
      R"( "noise": {"goodput_rps": 96.0}, "extra": 1})");
  const obs::JsonValue candidate = Parse(
      R"({"total": {"goodput_rps": 80.0, "latency_ms": {"p95": 40.0}},)"
      R"( "apis": {"x": {"counters": {"completed": 1000}}},)"
      R"( "noise": {"goodput_rps": 100.0}, "new": 2})");

  const obs::CompareResult result = obs::CompareRunSummaries(baseline, candidate);
  EXPECT_TRUE(result.HasRegression());
  EXPECT_EQ(result.regressions, 1);
  ASSERT_EQ(result.missing, std::vector<std::string>{"extra"});
  ASSERT_EQ(result.added, std::vector<std::string>{"new"});

  std::map<std::string, bool> regression_by_path;
  for (const obs::MetricDiff& diff : result.changed) {
    regression_by_path[diff.path] = diff.regression;
  }
  // 20 % goodput drop: regression. 20 % latency drop: improvement, listed
  // as changed but not a regression. Equal counters: not listed at all.
  // "noise" moved 4 % up (within rel_tol 5 %): not listed.
  ASSERT_EQ(regression_by_path.size(), 2u);
  EXPECT_TRUE(regression_by_path.at("total.goodput_rps"));
  EXPECT_FALSE(regression_by_path.at("total.latency_ms.p95"));

  const std::string table = obs::FormatCompareResult(result, obs::CompareOptions{});
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("total.goodput_rps"), std::string::npos);
}

TEST(ReportTest, CompareIdenticalDocumentsFindsNothing) {
  const obs::JsonValue doc = Parse(
      R"({"total": {"goodput_rps": 123.456}, "events": {"by_type": {"oscillation": 2}}})");
  const obs::CompareResult result = obs::CompareRunSummaries(doc, doc);
  EXPECT_FALSE(result.HasRegression());
  EXPECT_TRUE(result.changed.empty());
  EXPECT_TRUE(result.missing.empty());
  EXPECT_TRUE(result.added.empty());
}

TEST(ReportTest, ComparisonIgnoresPerEventListEntries) {
  const obs::JsonValue baseline = Parse(
      R"({"events": {"list": [{"t_s": 1.0, "value": 3.0}], "by_type": {"oscillation": 1}}})");
  const obs::JsonValue candidate = Parse(
      R"({"events": {"list": [{"t_s": 9.0, "value": 7.0}, {"t_s": 11.0, "value": 1.0}],)"
      R"( "by_type": {"oscillation": 1}}})");
  const obs::CompareResult result = obs::CompareRunSummaries(baseline, candidate);
  EXPECT_FALSE(result.HasRegression()) << obs::FormatCompareResult(result, {});
  EXPECT_TRUE(result.changed.empty());
  EXPECT_TRUE(result.missing.empty());
}

// --- End to end: summary of a real run diffs cleanly against itself ----------

TEST(ReportTest, RunSummaryRoundTripsAndDetectsInjectedRegression) {
  auto app = std::make_unique<sim::Application>("report-app", 5);
  sim::ServiceConfig svc;
  svc.name = "B";
  svc.mean_service_ms = 10.0;
  svc.service_sigma = 0.25;
  svc.threads = 4;
  svc.initial_pods = 1;
  const sim::ServiceId b = app->AddService(svc);
  sim::ApiSpec api0("api0", 1);
  api0.AddPath(sim::ExecutionPath{sim::Chain({b}), 1.0, {}});
  app->AddApi(std::move(api0));
  app->Finalize();
  auto monitor = obs::SloMonitor::ForApp(*app);
  auto controller = std::make_unique<core::TopFullController>(
      app.get(), std::make_unique<core::MimdRateController>(0.05, 0.01));
  controller->Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(800));
  app->RunFor(Seconds(12));

  obs::ReportInputs inputs;
  inputs.app = app.get();
  inputs.label = "roundtrip";
  inputs.controller = controller.get();
  inputs.monitor = monitor.get();
  const std::string text = obs::BuildRunSummaryJson(inputs);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(text, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->string, "topfull.run_summary.v1");
  EXPECT_EQ(doc.Find("label")->string, "roundtrip");
  ASSERT_NE(doc.Find("total"), nullptr);
  EXPECT_GT(doc.Find("total")->Find("goodput_rps")->number, 0.0);

  // Identical summaries: clean diff.
  EXPECT_FALSE(obs::CompareRunSummaries(doc, doc).HasRegression());

  // Inject a 50 % goodput drop into the candidate: must flag a regression.
  obs::JsonValue hurt = doc;
  for (auto& [key, value] : hurt.object) {
    if (key != "total") continue;
    for (auto& [k2, v2] : value.object) {
      if (k2 == "goodput_rps") v2.number *= 0.5;
    }
  }
  const obs::CompareResult result = obs::CompareRunSummaries(doc, hurt);
  EXPECT_TRUE(result.HasRegression());
  EXPECT_GE(result.regressions, 1);
}

}  // namespace
}  // namespace topfull

// Unit tests for the RL stack: MLP backprop (numerical gradient check),
// Adam, the Gaussian policy, PPO on a toy problem, and the graph simulator
// environment's behaviour rules.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rl/graph_sim_env.hpp"
#include "rl/nn.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"

namespace topfull::rl {
namespace {

TEST(MlpTest, OutputShapeAndDeterminism) {
  Rng rng(1);
  Mlp net({3, 8, 2}, rng);
  const std::vector<double> x{0.5, -1.0, 2.0};
  const auto y1 = net.Forward(x);
  const auto y2 = net.Forward(x);
  ASSERT_EQ(y1.size(), 2u);
  EXPECT_EQ(y1, y2);
}

TEST(MlpTest, ParamRoundTrip) {
  Rng rng(2);
  Mlp net({2, 4, 1}, rng);
  std::vector<double> params;
  net.CopyParamsTo(params);
  EXPECT_EQ(params.size(), net.ParamCount());
  // Mutate, restore, verify.
  const auto y0 = net.Forward({1.0, 2.0});
  std::vector<double> perturbed = params;
  for (auto& p : perturbed) p += 1.0;
  net.SetParams(perturbed);
  EXPECT_NE(net.Forward({1.0, 2.0})[0], y0[0]);
  net.SetParams(params);
  EXPECT_DOUBLE_EQ(net.Forward({1.0, 2.0})[0], y0[0]);
}

TEST(MlpTest, BackwardMatchesNumericalGradient) {
  Rng rng(3);
  Mlp net({2, 5, 1}, rng);
  const std::vector<double> x{0.7, -0.3};

  // Analytic gradient of y (scalar output) w.r.t. every parameter.
  Mlp::Cache cache;
  net.Forward(x, &cache);
  net.ZeroGrad();
  net.Backward(cache, {1.0});
  std::vector<double> analytic;
  net.CopyGradsTo(analytic);

  std::vector<double> params;
  net.CopyParamsTo(params);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 7) {  // spot-check subset
    std::vector<double> p = params;
    p[i] += eps;
    net.SetParams(p);
    const double up = net.Forward(x)[0];
    p[i] -= 2 * eps;
    net.SetParams(p);
    const double down = net.Forward(x)[0];
    net.SetParams(params);
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5) << "param " << i;
  }
}

TEST(MlpTest, BackwardInputGradientMatchesNumerical) {
  Rng rng(4);
  Mlp net({2, 6, 1}, rng);
  const std::vector<double> x{0.2, 0.9};
  Mlp::Cache cache;
  net.Forward(x, &cache);
  net.ZeroGrad();
  const auto dx = net.Backward(cache, {1.0});
  const double eps = 1e-6;
  for (int i = 0; i < 2; ++i) {
    auto xx = x;
    xx[static_cast<std::size_t>(i)] += eps;
    const double up = net.Forward(xx)[0];
    xx[static_cast<std::size_t>(i)] -= 2 * eps;
    const double down = net.Forward(xx)[0];
    EXPECT_NEAR(dx[static_cast<std::size_t>(i)], (up - down) / (2 * eps), 1e-5);
  }
}

TEST(AdamTest, MinimisesQuadratic) {
  // f(p) = (p-3)^2, df/dp = 2(p-3).
  Adam adam(1, /*lr=*/0.1);
  std::vector<double> p{0.0};
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> g{2.0 * (p[0] - 3.0)};
    adam.Step(p, g);
  }
  EXPECT_NEAR(p[0], 3.0, 0.05);
}

TEST(PolicyTest, MeanActionWithinBounds) {
  Rng rng(5);
  PolicyConfig config;
  GaussianPolicy policy(config, rng);
  for (double a = -3; a <= 3; a += 0.5) {
    for (double b = 0; b <= 5; b += 0.5) {
      const double act = policy.MeanAction({a, b});
      EXPECT_GE(act, config.action_low);
      EXPECT_LE(act, config.action_high);
    }
  }
}

TEST(PolicyTest, SampledActionsClippedAndLogProbFinite) {
  Rng rng(6);
  GaussianPolicy policy(PolicyConfig{}, rng);
  Rng sampler(7);
  for (int i = 0; i < 200; ++i) {
    double raw = 0.0;
    const double a = policy.SampleAction({0.5, 1.0}, sampler, &raw);
    EXPECT_GE(a, -0.5);
    EXPECT_LE(a, 0.5);
    const auto eval = policy.Evaluate({0.5, 1.0});
    EXPECT_TRUE(std::isfinite(GaussianPolicy::LogProb(raw, eval.mean, eval.log_std)));
  }
}

TEST(PolicyTest, LogProbPeaksAtMean) {
  const double lp_mean = GaussianPolicy::LogProb(0.1, 0.1, -1.0);
  const double lp_off = GaussianPolicy::LogProb(0.5, 0.1, -1.0);
  EXPECT_GT(lp_mean, lp_off);
}

TEST(PolicyTest, SaveLoadRoundTrip) {
  Rng rng(8);
  GaussianPolicy policy(PolicyConfig{}, rng);
  std::stringstream ss;
  policy.Save(ss);
  Rng rng2(999);
  GaussianPolicy loaded(PolicyConfig{}, rng2);
  EXPECT_NE(loaded.MeanAction({0.5, 1.0}), policy.MeanAction({0.5, 1.0}));
  ASSERT_TRUE(loaded.Load(ss));
  for (double lat = 0; lat < 5; lat += 0.7) {
    EXPECT_DOUBLE_EQ(loaded.MeanAction({0.8, lat}), policy.MeanAction({0.8, lat}));
  }
}

TEST(PolicyTest, LoadRejectsGarbage) {
  Rng rng(9);
  GaussianPolicy policy(PolicyConfig{}, rng);
  std::stringstream ss("not-a-checkpoint 1 2 3");
  EXPECT_FALSE(policy.Load(ss));
}

TEST(ObservationTest, ClampsFeatures) {
  const auto obs = MakeObservation(5000.0, 100.0, 99.0, 1.0);
  EXPECT_DOUBLE_EQ(obs[0], 2.0);
  EXPECT_DOUBLE_EQ(obs[1], kMaxLatencyFactor);
  const auto zero = MakeObservation(10.0, 0.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

// A trivial env whose optimum is "always output +0.5": reward = action.
class BanditEnv : public Env {
 public:
  std::vector<double> Reset(std::uint64_t) override {
    steps_ = 0;
    return {0.5, 0.5};
  }
  StepResult Step(double action) override {
    ++steps_;
    return {{0.5, 0.5}, action, steps_ >= 10};
  }
  int ObsDim() const override { return 2; }

 private:
  int steps_ = 0;
};

TEST(PpoTest, LearnsTrivialBandit) {
  Rng rng(10);
  auto policy = std::make_unique<GaussianPolicy>(PolicyConfig{}, rng);
  PpoConfig config;
  config.lr = 3e-4;
  config.steps_per_episode = 10;
  config.episodes_per_iter = 16;
  PpoTrainer trainer(policy.get(), config, 11);
  BanditEnv env;
  const double before = policy->MeanAction({0.5, 0.5});
  for (int i = 0; i < 60; ++i) trainer.TrainIteration(env);
  const double after = policy->MeanAction({0.5, 0.5});
  EXPECT_GT(after, before + 0.1);
  EXPECT_GT(after, 0.3);
}

TEST(PpoTest, TrainSelectsBestCheckpoint) {
  Rng rng(12);
  auto policy = std::make_unique<GaussianPolicy>(PolicyConfig{}, rng);
  PpoConfig config;
  config.steps_per_episode = 10;
  config.episodes_per_iter = 8;
  PpoTrainer trainer(policy.get(), config, 13);
  BanditEnv env;
  const auto result = trainer.Train(
      env, /*total_episodes=*/160,
      [&env](GaussianPolicy& p) { return EvaluatePolicy(p, env, 2, 0, 10); },
      /*checkpoint_every=*/40);
  EXPECT_EQ(result.episodes_trained, 160);
  EXPECT_FALSE(result.best_params.empty());
  EXPECT_FALSE(result.history.empty());
  // The restored policy scores the recorded validation value.
  EXPECT_NEAR(EvaluatePolicy(*policy, env, 2, 0, 10), result.best_validation_score,
              1e-9);
}

TEST(PpoTest, TrainingImprovesGraphSimPolicy) {
  // Regression net for the whole RL stack: a briefly-trained policy must
  // clearly beat its untrained self on fixed validation scenarios.
  Rng rng(21);
  GaussianPolicy policy(PolicyConfig{}, rng);
  GraphSimEnv train_env({}, 5150);
  GraphSimEnv validation_env({}, 6160);
  const double before = EvaluatePolicy(policy, validation_env, 12, 400, 50);
  PpoTrainer trainer(&policy, PpoConfig{}, 22);
  trainer.Train(train_env, /*total_episodes=*/640);
  const double after = EvaluatePolicy(policy, validation_env, 12, 400, 50);
  EXPECT_GT(after, before + 0.5);
}

// --- GraphSimEnv behaviour rules (§4.3) -------------------------------------

TEST(GraphSimEnvTest, ResetIsSeedDeterministic) {
  GraphSimEnv env_a({}, 42), env_b({}, 42);
  const auto oa = env_a.Reset(7);
  const auto ob = env_b.Reset(7);
  EXPECT_EQ(oa, ob);
  const auto ra = env_a.Step(0.1);
  const auto rb = env_b.Step(0.1);
  EXPECT_EQ(ra.obs, rb.obs);
  EXPECT_DOUBLE_EQ(ra.reward, rb.reward);
}

TEST(GraphSimEnvTest, EpisodeEndsAtConfiguredSteps) {
  GraphSimConfig config;
  config.steps_per_episode = 5;
  GraphSimEnv env(config, 1);
  env.Reset(1);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(env.Step(0.0).done);
  EXPECT_TRUE(env.Step(0.0).done);
}

TEST(GraphSimEnvTest, OverloadRaisesLatencyUnderloadKeepsItLow) {
  GraphSimConfig config;
  config.surge_prob = 0.0;
  config.scaleup_prob = 0.0;
  config.undershoot_start_prob = 0.0;
  config.noise = 0.0;
  GraphSimEnv env(config, 99);
  env.Reset(3);
  // Drive hard over capacity: latency must exceed the SLO eventually.
  double last_lat = 0.0;
  for (int i = 0; i < 20; ++i) last_lat = env.Step(0.5).obs[1];
  EXPECT_GT(last_lat, 1.0);
  // Now shed hard: latency recovers (rule 2).
  for (int i = 0; i < 30; ++i) last_lat = env.Step(-0.5).obs[1];
  EXPECT_LT(last_lat, 0.5);
}

TEST(GraphSimEnvTest, GoodputFollowsRateWhenUnderloaded) {
  GraphSimConfig config;
  config.surge_prob = 0.0;
  config.scaleup_prob = 0.0;
  config.undershoot_start_prob = 0.0;
  config.noise = 0.0;
  config.demand_lo = 0.3;
  config.demand_hi = 0.5;  // always below capacity
  GraphSimEnv env(config, 17);
  env.Reset(2);
  const auto r = env.Step(0.0);
  // Rule 3: not overloaded => goodput ~ incoming, ratio ~ 1.
  EXPECT_NEAR(r.obs[0], 1.0, 0.05);
  EXPECT_LT(r.obs[1], 0.5);
}

TEST(GraphSimEnvTest, ThrashReducesGoodputPastSaturation) {
  GraphSimConfig config;
  config.surge_prob = 0.0;
  config.scaleup_prob = 0.0;
  config.undershoot_start_prob = 0.0;
  config.noise = 0.0;
  config.demand_lo = 2.2;
  config.demand_hi = 2.4;  // far above capacity
  GraphSimEnv env(config, 23);
  env.Reset(4);
  env.Step(0.0);
  const double good_over = env.last_goodput();
  // Cut towards capacity: goodput should improve (rule 1/2).
  for (int i = 0; i < 10; ++i) env.Step(-0.25);
  for (int i = 0; i < 15; ++i) {
    const auto obs = env.Step(0.0).obs;
    (void)obs;
  }
  EXPECT_GT(env.last_goodput(), good_over);
}

TEST(GraphSimEnvTest, RateLimitClampedPositive) {
  GraphSimEnv env({}, 5);
  env.Reset(6);
  for (int i = 0; i < 60; ++i) env.Step(-0.5);
  EXPECT_GT(env.rate_limit(), 0.0);
}

}  // namespace
}  // namespace topfull::rl

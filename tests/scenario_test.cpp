// Scenario engine tests: spec builder and schedules, the invariant
// checker over synthetic SLO-event streams, fairness/amplification
// statistics, the text-profile parser (good path, inline malformed
// inputs, the on-disk corpus, and a seeded fuzz sweep), the built-in
// library's internal consistency, and the conformance matrix itself —
// byte-identical JSON across pool sizes and tracing modes, the
// metastable trap/escape demonstration, and sharded self-consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/online_boutique.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "exp/harness.hpp"
#include "exp/run_executor.hpp"
#include "exp/sharded_run.hpp"
#include "obs/fairness.hpp"
#include "obs/slo_monitor.hpp"
#include "scenario/invariant.hpp"
#include "scenario/library.hpp"
#include "scenario/profile.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "workload/generators.hpp"

namespace topfull::scenario {
namespace {

// --- Spec builder -------------------------------------------------------------

TEST(ScenarioSpecTest, BuilderPopulatesEveryField) {
  TenantSpec premium;
  premium.name = "premium";
  premium.weight = 0.25;
  premium.priority_lo = 0;
  premium.priority_hi = 7;
  const ScenarioSpec spec =
      ScenarioSpec::Make("storm", "trainticket")
          .Describe("demo")
          .Seed(99)
          .Duration(75.0)
          .Phase(0.0, 100.0)
          .Phase(10.0, 900.0, /*ramp_s=*/4.0)
          .Tenant(premium)
          .Client(/*timeout_s=*/2.5, /*retries=*/3, /*backoff_s=*/0.3,
                  /*think_s=*/0.5)
          .Rpc(/*timeout_s=*/0.7, /*retries=*/2, /*backoff_s=*/0.1)
          .Faults("crash s0 at=10 for=5")
          .StaticRate(450.0)
          .DistinctPriorities()
          .Require(InvariantKind::kGoodputFloor, 200.0, 10.0)
          .ExpectViolation("static", InvariantKind::kGoodputFloor);
  EXPECT_EQ(spec.name, "storm");
  EXPECT_EQ(spec.app, "trainticket");
  EXPECT_EQ(spec.description, "demo");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.duration_s, 75.0);
  ASSERT_EQ(spec.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.phases[1].users, 900.0);
  EXPECT_DOUBLE_EQ(spec.phases[1].ramp_s, 4.0);
  ASSERT_EQ(spec.tenants.size(), 1u);
  EXPECT_EQ(spec.tenants[0].priority_hi, 7);
  EXPECT_DOUBLE_EQ(spec.client_timeout_s, 2.5);
  EXPECT_EQ(spec.client_retries, 3);
  EXPECT_DOUBLE_EQ(spec.client_retry_backoff_s, 0.3);
  EXPECT_DOUBLE_EQ(spec.think_s, 0.5);
  EXPECT_DOUBLE_EQ(spec.hop_timeout_s, 0.7);
  EXPECT_EQ(spec.hop_retries, 2);
  EXPECT_EQ(spec.fault_profile, "crash s0 at=10 for=5");
  EXPECT_DOUBLE_EQ(spec.static_rate, 450.0);
  EXPECT_TRUE(spec.distinct_priorities);
  ASSERT_EQ(spec.invariants.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.invariants[0].from_s, 10.0);
  EXPECT_TRUE(
      spec.ExpectsViolation("static", InvariantKind::kGoodputFloor));
  EXPECT_FALSE(
      spec.ExpectsViolation("topfull", InvariantKind::kGoodputFloor));
  EXPECT_FALSE(
      spec.ExpectsViolation("static", InvariantKind::kFairnessIndexMin));
}

TEST(ScenarioSpecTest, KindNamesRoundTrip) {
  for (const InvariantKind kind :
       {InvariantKind::kGoodputFloor, InvariantKind::kEscapesOverloadBy,
        InvariantKind::kMaxRetryAmplification,
        InvariantKind::kFairnessIndexMin,
        InvariantKind::kNoOscillationAfter}) {
    const auto parsed = InvariantKindFromName(InvariantKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(InvariantKindFromName("latency_ceiling").has_value());
}

TEST(ScenarioSpecTest, UserScheduleStepsBetweenPhases) {
  const ScenarioSpec spec = ScenarioSpec::Make("steps")
                                .Phase(0.0, 100.0)
                                .Phase(30.0, 500.0)
                                .Phase(60.0, 200.0);
  const workload::Schedule users = spec.BuildUserSchedule();
  EXPECT_DOUBLE_EQ(users.At(0), 100.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(29)), 100.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(30)), 500.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(59)), 500.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(90)), 200.0);
}

TEST(ScenarioSpecTest, UserScheduleRampClimbsAndLandsExactly) {
  const ScenarioSpec spec = ScenarioSpec::Make("ramp")
                                .Phase(0.0, 100.0)
                                .Phase(30.0, 400.0, /*ramp_s=*/10.0);
  const workload::Schedule users = spec.BuildUserSchedule();
  // 1 s steps from the previous level: still 100 at the phase start, then
  // +30 per second, landing exactly on 400 at 40 s.
  EXPECT_DOUBLE_EQ(users.At(Seconds(30)), 100.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(31)), 130.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(35)), 250.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(40)), 400.0);
  EXPECT_DOUBLE_EQ(users.At(Seconds(90)), 400.0);
  // Monotone along the whole climb.
  for (int s = 30; s < 40; ++s) {
    EXPECT_LE(users.At(Seconds(s)), users.At(Seconds(s + 1)));
  }
}

TEST(ScenarioSpecTest, UserScheduleDiurnalRidesTheCosine) {
  const ScenarioSpec spec =
      ScenarioSpec::Make("diurnal").Duration(240.0).Diurnal(400.0, 2800.0,
                                                            120.0);
  const workload::Schedule users = spec.BuildUserSchedule();
  // Raised cosine from the trough: low at t=0 and t=period, high at mid.
  EXPECT_NEAR(users.At(0), 400.0, 1e-9);
  EXPECT_NEAR(users.At(Seconds(60)), 2800.0, 1e-9);
  EXPECT_NEAR(users.At(Seconds(120)), 400.0, 1e-9);
  EXPECT_GT(users.At(Seconds(30)), 400.0);
  EXPECT_LT(users.At(Seconds(30)), 2800.0);
}

TEST(ScenarioSpecTest, TimeScaledShrinksTimesButNotThresholds) {
  const ScenarioSpec spec =
      ScenarioSpec::Make("scale")
          .Duration(100.0)
          .Phase(0.0, 100.0)
          .Phase(40.0, 800.0, /*ramp_s=*/8.0)
          .Diurnal(100.0, 900.0, 60.0)
          .Require(InvariantKind::kGoodputFloor, 300.0, 40.0)
          .Require(InvariantKind::kEscapesOverloadBy, 20.0, 50.0);
  const ScenarioSpec half = spec.TimeScaled(0.5);
  EXPECT_DOUBLE_EQ(half.duration_s, 50.0);
  EXPECT_DOUBLE_EQ(half.phases[1].at_s, 20.0);
  EXPECT_DOUBLE_EQ(half.phases[1].ramp_s, 4.0);
  EXPECT_DOUBLE_EQ(half.phases[1].users, 800.0);  // population untouched
  EXPECT_DOUBLE_EQ(half.diurnal_period_s, 30.0);
  EXPECT_DOUBLE_EQ(half.diurnal_high, 900.0);
  // goodput floor: threshold is a rate, only from_s scales.
  EXPECT_DOUBLE_EQ(half.invariants[0].value, 300.0);
  EXPECT_DOUBLE_EQ(half.invariants[0].from_s, 20.0);
  // escape budget: the value itself is a time, both scale.
  EXPECT_DOUBLE_EQ(half.invariants[1].value, 10.0);
  EXPECT_DOUBLE_EQ(half.invariants[1].from_s, 25.0);
}

// --- Invariant checker over synthetic event streams ---------------------------

obs::SloEvent Event(double t_s, obs::SloEventType type,
                    const std::string& subject) {
  obs::SloEvent ev;
  ev.t_s = t_s;
  ev.type = type;
  ev.subject = subject;
  return ev;
}

ScenarioSpec EscapeSpec(double budget, double from) {
  return ScenarioSpec::Make("x").Require(InvariantKind::kEscapesOverloadBy,
                                         budget, from);
}

TEST(InvariantCheckerTest, EscapeHoldsWhenOverloadClearsInTime) {
  const std::vector<obs::SloEvent> events = {
      Event(50.0, obs::SloEventType::kOverloadOnset, "s1"),
      Event(80.0, obs::SloEventType::kOverloadClear, "s1"),
  };
  RunArtifacts art;
  art.slo_events = &events;
  const auto results = CheckInvariants(EscapeSpec(40.0, 70.0), art);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_DOUBLE_EQ(results[0].measured, 80.0);
  EXPECT_FALSE(results[0].witness.has_value());
  EXPECT_FALSE(results[0].expected_violation);  // checker never sets this
}

TEST(InvariantCheckerTest, EscapeFailsOnLateClearWithOnsetWitness) {
  const std::vector<obs::SloEvent> events = {
      Event(50.0, obs::SloEventType::kOverloadOnset, "s1"),
      Event(120.0, obs::SloEventType::kOverloadClear, "s1"),
  };
  RunArtifacts art;
  art.slo_events = &events;
  const auto results = CheckInvariants(EscapeSpec(40.0, 70.0), art);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_DOUBLE_EQ(results[0].measured, 120.0);
  ASSERT_TRUE(results[0].witness.has_value());
  EXPECT_EQ(results[0].witness->type, obs::SloEventType::kOverloadOnset);
  EXPECT_DOUBLE_EQ(results[0].witness->t_s, 50.0);
}

TEST(InvariantCheckerTest, EscapeFailsWhenOverloadNeverClears) {
  const std::vector<obs::SloEvent> events = {
      Event(55.0, obs::SloEventType::kOverloadOnset, "s1"),
  };
  RunArtifacts art;
  art.slo_events = &events;
  const auto results = CheckInvariants(EscapeSpec(40.0, 70.0), art);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  ASSERT_TRUE(results[0].witness.has_value());
  EXPECT_EQ(results[0].witness->subject, "s1");
  EXPECT_NE(results[0].detail.find("never cleared"), std::string::npos);
}

TEST(InvariantCheckerTest, EscapeFailsOnOnsetPastDeadline) {
  const std::vector<obs::SloEvent> events = {
      Event(115.0, obs::SloEventType::kOverloadOnset, "s2"),
      Event(116.0, obs::SloEventType::kOverloadClear, "s2"),
  };
  RunArtifacts art;
  art.slo_events = &events;
  const auto results = CheckInvariants(EscapeSpec(40.0, 70.0), art);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_DOUBLE_EQ(results[0].measured, 115.0);
}

TEST(InvariantCheckerTest, EscapeTracksEpisodesPerSubject) {
  // s1's episode clears in time; s2's does not — s2 must be the witness.
  const std::vector<obs::SloEvent> events = {
      Event(10.0, obs::SloEventType::kOverloadOnset, "s1"),
      Event(12.0, obs::SloEventType::kOverloadOnset, "s2"),
      Event(20.0, obs::SloEventType::kOverloadClear, "s1"),
      Event(200.0, obs::SloEventType::kOverloadClear, "s2"),
  };
  RunArtifacts art;
  art.slo_events = &events;
  const auto results = CheckInvariants(EscapeSpec(40.0, 70.0), art);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  ASSERT_TRUE(results[0].witness.has_value());
  EXPECT_EQ(results[0].witness->subject, "s2");
}

TEST(InvariantCheckerTest, NoOscillationHonoursTheQuietTime) {
  const std::vector<obs::SloEvent> events = {
      Event(90.0, obs::SloEventType::kOscillation, "api0"),
  };
  RunArtifacts art;
  art.slo_events = &events;
  const ScenarioSpec ok_spec = ScenarioSpec::Make("x").Require(
      InvariantKind::kNoOscillationAfter, 0.0, 100.0);
  EXPECT_TRUE(CheckInvariants(ok_spec, art)[0].ok);

  const ScenarioSpec bad_spec = ScenarioSpec::Make("x").Require(
      InvariantKind::kNoOscillationAfter, 0.0, 80.0);
  const auto results = CheckInvariants(bad_spec, art);
  EXPECT_FALSE(results[0].ok);
  ASSERT_TRUE(results[0].witness.has_value());
  EXPECT_EQ(results[0].witness->type, obs::SloEventType::kOscillation);
}

TEST(InvariantCheckerTest, AmplificationComparedAgainstCap) {
  RunArtifacts art;
  // 200 hop dispatches of which 50 retries -> hop factor 4/3; 300 client
  // attempts over 100 intents -> client factor 3; total 4.
  art.amplification = obs::ComputeAmplification(200, 50, 300, 100);
  const ScenarioSpec tight = ScenarioSpec::Make("x").Require(
      InvariantKind::kMaxRetryAmplification, 3.5);
  const auto bad = CheckInvariants(tight, art);
  EXPECT_FALSE(bad[0].ok);
  EXPECT_DOUBLE_EQ(bad[0].measured, 4.0);
  const ScenarioSpec loose = ScenarioSpec::Make("x").Require(
      InvariantKind::kMaxRetryAmplification, 4.0);
  EXPECT_TRUE(CheckInvariants(loose, art)[0].ok);
}

TEST(InvariantCheckerTest, GoodputFloorWithoutMetricsMeasuresZero) {
  RunArtifacts art;  // metrics == nullptr
  const ScenarioSpec spec =
      ScenarioSpec::Make("x").Require(InvariantKind::kGoodputFloor, 100.0);
  const auto results = CheckInvariants(spec, art);
  EXPECT_FALSE(results[0].ok);
  EXPECT_DOUBLE_EQ(results[0].measured, 0.0);
}

// --- Fairness / amplification statistics --------------------------------------

TEST(FairnessStatsTest, JainIndexDegenerateCasesAreFair) {
  EXPECT_DOUBLE_EQ(obs::JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(obs::JainIndex({0.7}), 1.0);
  EXPECT_DOUBLE_EQ(obs::JainIndex({0.0, 0.0, 0.0}), 1.0);
}

TEST(FairnessStatsTest, JainIndexRanksSkewBelowEquality) {
  EXPECT_DOUBLE_EQ(obs::JainIndex({0.5, 0.5, 0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(obs::JainIndex({1.0, 0.0}), 0.5);  // one user starved
  // n users, one gets everything -> 1/n.
  EXPECT_NEAR(obs::JainIndex({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // Scale invariance.
  EXPECT_NEAR(obs::JainIndex({0.2, 0.6, 0.9}),
              obs::JainIndex({2.0, 6.0, 9.0}), 1e-12);
}

TEST(FairnessStatsTest, SuccessRateFairnessSummaryIsExact) {
  const obs::FairnessStats stats = obs::SuccessRateFairness({1.0, 0.5});
  EXPECT_EQ(stats.users, 2);
  EXPECT_DOUBLE_EQ(stats.mean, 0.75);
  EXPECT_DOUBLE_EQ(stats.variance, 0.0625);
  EXPECT_DOUBLE_EQ(stats.min, 0.5);
  EXPECT_DOUBLE_EQ(stats.max, 1.0);
  EXPECT_NEAR(stats.jain, 0.9, 1e-12);

  const obs::FairnessStats empty = obs::SuccessRateFairness({});
  EXPECT_EQ(empty.users, 0);
  EXPECT_DOUBLE_EQ(empty.jain, 1.0);
  EXPECT_DOUBLE_EQ(empty.variance, 0.0);
}

TEST(FairnessStatsTest, ComputeAmplificationHandlesZeroDenominators) {
  const obs::AmplificationStats none = obs::ComputeAmplification(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(none.hop_amplification, 1.0);
  EXPECT_DOUBLE_EQ(none.client_amplification, 1.0);
  EXPECT_DOUBLE_EQ(none.total, 1.0);

  const obs::AmplificationStats stats =
      obs::ComputeAmplification(150, 50, 200, 100);
  EXPECT_DOUBLE_EQ(stats.hop_amplification, 1.5);
  EXPECT_DOUBLE_EQ(stats.client_amplification, 2.0);
  EXPECT_DOUBLE_EQ(stats.total, 3.0);
}

TEST(FairnessStatsTest, MinTenantFairnessSkipsUnsettledTenants) {
  EXPECT_DOUBLE_EQ(MinTenantFairness({}), 1.0);

  workload::UserOutcomes lucky;
  lucky.intents = lucky.attempts = lucky.ok = 10;
  workload::UserOutcomes starved;
  starved.intents = starved.attempts = starved.failed = 10;
  workload::UserOutcomes idle;  // never settled: carries no signal

  // Tenant 0 is perfectly fair, tenant 1 starves one of two users.
  const std::vector<std::vector<workload::UserOutcomes>> outcomes = {
      {lucky, lucky, idle},
      {lucky, starved},
  };
  EXPECT_DOUBLE_EQ(MinTenantFairness(outcomes), 0.5);

  // A tenant with only idle users contributes nothing (not a zero).
  const std::vector<std::vector<workload::UserOutcomes>> idle_only = {
      {idle, idle},
  };
  EXPECT_DOUBLE_EQ(MinTenantFairness(idle_only), 1.0);
}

// --- Profile parser -----------------------------------------------------------

TEST(ScenarioProfileTest, ParsesEveryDirective) {
  const std::string text = R"(# demo profile
scenario: name=storm, app=trainticket, duration=90, seed=7, static=800, distinct_prio=1
phase: at=0, users=300
phase: at=20, users=2000, ramp=5
tenant: name=premium, weight=0.4, prio=0-15
tenant: name=free, weight=0.6, prio=50
client: timeout=2, retries=2, backoff=0.2, think=0.5
rpc: timeout=0.5, retries=1, backoff=0.05
fault: crash s0 at=30 for=10
fault: slow s1 at=50 for=20
invariant: kind=max_retry_amplification, value=4
invariant: kind=goodput_floor, value=200, from=20
expect_violation: controller=static, invariant=goodput_floor

scenario: name=daynight
diurnal: low=200, high=1500, period=60
invariant: kind=goodput_floor, value=100
)";
  std::string error;
  const auto specs = ParseScenarioProfile(text, &error);
  ASSERT_TRUE(specs.has_value()) << error;
  ASSERT_EQ(specs->size(), 2u);

  const ScenarioSpec& storm = (*specs)[0];
  EXPECT_EQ(storm.name, "storm");
  EXPECT_EQ(storm.app, "trainticket");
  EXPECT_DOUBLE_EQ(storm.duration_s, 90.0);
  EXPECT_EQ(storm.seed, 7u);
  EXPECT_DOUBLE_EQ(storm.static_rate, 800.0);
  EXPECT_TRUE(storm.distinct_priorities);
  ASSERT_EQ(storm.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(storm.phases[1].ramp_s, 5.0);
  ASSERT_EQ(storm.tenants.size(), 2u);
  EXPECT_EQ(storm.tenants[0].priority_lo, 0);
  EXPECT_EQ(storm.tenants[0].priority_hi, 15);
  EXPECT_EQ(storm.tenants[1].priority_lo, 50);  // single-value band
  EXPECT_EQ(storm.tenants[1].priority_hi, 50);
  EXPECT_EQ(storm.client_retries, 2);
  EXPECT_DOUBLE_EQ(storm.think_s, 0.5);
  EXPECT_DOUBLE_EQ(storm.hop_timeout_s, 0.5);
  // Multiple fault lines join with ';' (the fault-profile separator).
  EXPECT_EQ(storm.fault_profile, "crash s0 at=30 for=10;slow s1 at=50 for=20");
  ASSERT_EQ(storm.invariants.size(), 2u);
  EXPECT_EQ(storm.invariants[0].kind, InvariantKind::kMaxRetryAmplification);
  EXPECT_TRUE(storm.ExpectsViolation("static", InvariantKind::kGoodputFloor));

  const ScenarioSpec& daynight = (*specs)[1];
  EXPECT_EQ(daynight.app, "boutique");  // default
  EXPECT_DOUBLE_EQ(daynight.diurnal_period_s, 60.0);
}

struct MalformedCase {
  const char* text;
  const char* expect;  // substring of the error message
};

TEST(ScenarioProfileTest, RejectsMalformedInputWithLineNumbers) {
  const std::vector<MalformedCase> cases = {
      {"phase: at=0, users=100\n", "before the first 'scenario:'"},
      {"scenario: name=x\nworkload: users=9\n", "unknown directive"},
      {"scenario name=x\n", "has no ':'"},
      {"scenario: name=x\nphase: at=0, users=many\n", "non-numeric"},
      {"scenario: name=x\nscenario: name=x\n", "duplicate scenario name"},
      {"scenario: name=x\nphase: at=30, users=1\nphase: at=10, users=2\n",
       "nondecreasing"},
      {"scenario: name=x\ninvariant: kind=nope, value=1\n",
       "unknown invariant kind"},
      {"scenario: name=x\nclient: retires=3\n", "unknown key"},
      {"scenario: name=x\ntenant: weight=1\n", "missing required key"},
      {"scenario: name=x\nfault:\n", "empty profile"},
      {"scenario: name=x\ntenant: name=t, weight=1, prio=20-5\n",
       "priority band"},
      {"scenario: name=x\ndiurnal: low=1, high=2\n", "missing required key"},
      {"scenario: app=boutique\n", "missing required key 'name'"},
      {"scenario: name=x\nexpect_violation: controller=static\n",
       "missing required key"},
      {"# only comments\n", "declares no scenarios"},
      {"", "declares no scenarios"},
  };
  for (const MalformedCase& c : cases) {
    std::string error;
    const auto specs = ParseScenarioProfile(c.text, &error);
    EXPECT_FALSE(specs.has_value()) << c.text;
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "input: " << c.text << "\nerror: " << error;
    EXPECT_NE(error.find("line "), std::string::npos) << error;
  }
}

TEST(ScenarioProfileTest, CorpusFilesParseAsLabelled) {
  const std::filesystem::path dir = TOPFULL_SCENARIO_DATA_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int bad = 0, good = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string stem = entry.path().filename().string();
    std::string error;
    const auto specs = LoadScenarioProfile(entry.path().string(), &error);
    if (stem.rfind("bad_", 0) == 0) {
      ++bad;
      EXPECT_FALSE(specs.has_value()) << stem;
      EXPECT_NE(error.find("line "), std::string::npos)
          << stem << ": " << error;
    } else if (stem.rfind("good_", 0) == 0) {
      ++good;
      EXPECT_TRUE(specs.has_value()) << stem << ": " << error;
      if (specs.has_value()) {
        EXPECT_FALSE(specs->empty()) << stem;
      }
    } else {
      ADD_FAILURE() << "corpus file without bad_/good_ prefix: " << stem;
    }
  }
  EXPECT_GE(bad, 10) << "malformed corpus shrank";
  EXPECT_GE(good, 1);
}

TEST(ScenarioProfileTest, FuzzNeverCrashesAndAlwaysExplains) {
  // Seeded structural fuzz: random lines assembled from grammar fragments
  // and junk. The parser must never crash and every rejection must carry a
  // line-numbered message.
  const std::vector<std::string> fragments = {
      "scenario", "phase", "tenant", "client", "rpc", "fault", "diurnal",
      "invariant", "expect_violation", "bogus", ":", "=", ",", "name", "x",
      "at", "users", "kind", "goodput_floor", "1e9", "-3", "0.5", "NaN",
      "many", "#", "prio", "0-15", "15-0", "\t", "scenario: name=ok",
  };
  Rng rng(20240808);
  int parsed_ok = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string text;
    const int lines = static_cast<int>(rng.UniformInt(1, 12));
    for (int l = 0; l < lines; ++l) {
      const int tokens = static_cast<int>(rng.UniformInt(1, 8));
      for (int t = 0; t < tokens; ++t) {
        const auto pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(fragments.size()) - 1));
        text += fragments[pick];
        if (rng.Bernoulli(0.5)) text += " ";
      }
      text += "\n";
    }
    std::string error;
    const auto specs = ParseScenarioProfile(text, &error);
    if (specs.has_value()) {
      ++parsed_ok;
      EXPECT_FALSE(specs->empty());
    } else {
      EXPECT_FALSE(error.empty()) << text;
      EXPECT_NE(error.find("line "), std::string::npos) << error;
    }
  }
  // The grammar fragments make some inputs valid; most must be rejected.
  EXPECT_LT(parsed_ok, 300);
}

TEST(ScenarioProfileTest, LoadReportsUnreadableFiles) {
  std::string error;
  const auto specs =
      LoadScenarioProfile("/nonexistent/scenarios.profile", &error);
  EXPECT_FALSE(specs.has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// --- Built-in library ---------------------------------------------------------

TEST(ScenarioLibraryTest, BuiltinsAreInternallyConsistent) {
  const std::vector<ScenarioSpec> specs = BuiltinScenarios();
  ASSERT_GE(specs.size(), 4u) << "the matrix needs >= 4 scenario families";
  const MatrixOptions defaults;
  std::vector<std::string> names;
  for (const ScenarioSpec& spec : specs) {
    names.push_back(spec.name);
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_GT(spec.duration_s, 0.0) << spec.name;
    EXPECT_FALSE(spec.invariants.empty()) << spec.name;
    EXPECT_TRUE(!spec.phases.empty() || spec.diurnal_period_s > 0.0)
        << spec.name << " drives no workload";
    // Every expected violation must reference a declared invariant kind
    // and a controller that is actually in the default matrix.
    for (const Expectation& e : spec.expected_violations) {
      bool declared = false;
      for (const Invariant& inv : spec.invariants) {
        declared = declared || inv.kind == e.invariant;
      }
      EXPECT_TRUE(declared) << spec.name << " expects a violation of an "
                            << "invariant it never requires";
      bool known = false;
      for (const std::string& c : defaults.controllers) {
        known = known || c == e.controller;
      }
      EXPECT_TRUE(known) << spec.name << " expects a violation from '"
                         << e.controller << "', not a default controller";
    }
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "duplicate scenario names";

  EXPECT_TRUE(FindBuiltinScenario("metastable_trap").has_value());
  EXPECT_FALSE(FindBuiltinScenario("no_such_scenario").has_value());
}

// --- Matrix runner ------------------------------------------------------------

// A deliberately small scenario so the determinism matrix stays cheap.
ScenarioSpec MiniStorm() {
  return ScenarioSpec::Make("mini_storm", "boutique")
      .Seed(5)
      .Duration(20.0)
      .Phase(0.0, 200.0)
      .Phase(5.0, 1200.0)
      .Phase(15.0, 200.0)
      .Client(/*timeout_s=*/2.0, /*retries=*/1, /*backoff_s=*/0.2)
      .Rpc(/*timeout_s=*/0.5, /*retries=*/1, /*backoff_s=*/0.05)
      .StaticRate(600.0)
      .Require(InvariantKind::kGoodputFloor, 1.0)
      .Require(InvariantKind::kMaxRetryAmplification, 50.0);
}

TEST(ScenarioMatrixTest, ReportByteIdenticalAcrossPoolSizesAndTracing) {
  const std::vector<ScenarioSpec> specs = {MiniStorm()};
  MatrixOptions options;
  options.controllers = {"breakwater", "static"};

  ThreadPool sequential(1);
  options.pool = &sequential;
  const std::string baseline =
      MatrixReportJson(RunScenarioMatrix(specs, options));
  ASSERT_NE(baseline.find("topfull.scenario_matrix.v1"), std::string::npos);

  ThreadPool wide(4);
  options.pool = &wide;
  EXPECT_EQ(MatrixReportJson(RunScenarioMatrix(specs, options)), baseline)
      << "matrix report depends on worker-pool size";

  // Tracing on: telemetry attaches a tracer + exports, but the verdict
  // stream must not move by a byte.
  const std::string trace_dir =
      ::testing::TempDir() + "scenario_matrix_trace";
  ASSERT_EQ(::setenv("TOPFULL_TRACE_DIR", trace_dir.c_str(), 1), 0);
  const std::string traced =
      MatrixReportJson(RunScenarioMatrix(specs, options));
  ASSERT_EQ(::unsetenv("TOPFULL_TRACE_DIR"), 0);
  EXPECT_EQ(traced, baseline) << "matrix report depends on tracing";
  std::filesystem::remove_all(trace_dir);
}

TEST(ScenarioMatrixTest, ErrorCellsNeverConform) {
  const CellVerdict unknown_controller =
      RunScenarioCell(MiniStorm(), "no_such_controller");
  EXPECT_FALSE(unknown_controller.error.empty());
  EXPECT_FALSE(unknown_controller.conforms);

  ScenarioSpec bad_app = MiniStorm();
  bad_app.app = "no_such_app";
  const CellVerdict unknown_app = RunScenarioCell(bad_app, "static");
  EXPECT_NE(unknown_app.error.find("unknown app"), std::string::npos);

  ScenarioSpec bad_faults = MiniStorm();
  bad_faults.fault_profile = "explode everything at=1";
  const CellVerdict bad_fault_cell = RunScenarioCell(bad_faults, "static");
  EXPECT_NE(bad_fault_cell.error.find("fault profile"), std::string::npos);

  EXPECT_FALSE(AllConform({unknown_controller}));
}

// The ISSUE's acceptance demonstration: in the metastable scenario the
// static limiter must stay trapped (its declared violations trip) while
// TopFull escapes within the budget. Guards the calibrated library.
TEST(ScenarioMatrixTest, MetastableTrapsStaticWhileTopFullEscapes) {
  const auto spec = FindBuiltinScenario("metastable_trap");
  ASSERT_TRUE(spec.has_value());

  const CellVerdict trapped = RunScenarioCell(*spec, "static");
  EXPECT_TRUE(trapped.error.empty()) << trapped.error;
  EXPECT_FALSE(trapped.pass) << "static escaped the metastable trap";
  EXPECT_TRUE(trapped.conforms) << "static's violations must all be declared";
  bool escape_violated = false;
  for (const InvariantResult& r : trapped.invariants) {
    if (r.invariant.kind == InvariantKind::kEscapesOverloadBy) {
      escape_violated = !r.ok;
      EXPECT_TRUE(r.expected_violation);
    }
  }
  EXPECT_TRUE(escape_violated) << "static cleared overload inside the budget";

  const CellVerdict escaped = RunScenarioCell(*spec, "topfull");
  EXPECT_TRUE(escaped.error.empty()) << escaped.error;
  EXPECT_TRUE(escaped.pass) << "topfull failed to escape the trap";
  EXPECT_TRUE(escaped.conforms);
  EXPECT_GT(escaped.goodput_rps, trapped.goodput_rps)
      << "escaping should out-serve staying trapped";
}

// --- Sharded self-consistency -------------------------------------------------

// One scenario driven through the sharded engine: shards=4 must be
// bit-identical between threaded and sequential execution, shards=1 must
// equal the unsharded run, and the 4-shard goodput must agree with the
// 1-shard goodput within the cross-shard-latency tolerance.
TEST(ScenarioShardedTest, FourShardsSelfConsistent) {
  const ScenarioSpec scenario = MiniStorm();

  exp::RunSpec spec;
  spec.label = "scenario_shard";
  spec.duration_s = scenario.duration_s;
  spec.make_app = [scenario]() {
    apps::BoutiqueOptions options;
    options.seed = scenario.seed;
    return apps::MakeOnlineBoutique(options);
  };
  spec.traffic = [scenario](workload::TrafficDriver& driver,
                            sim::Application& app) {
    workload::ClosedLoopConfig config = exp::UniformUsers(app);
    config.think = Seconds(scenario.think_s);
    config.client_timeout = Seconds(scenario.client_timeout_s);
    config.max_client_retries = scenario.client_retries;
    config.client_retry_backoff = Seconds(scenario.client_retry_backoff_s);
    driver.AddClosedLoop(std::move(config), scenario.BuildUserSchedule());
  };
  spec.variant = *exp::VariantFromName("breakwater");
  spec.static_rate = scenario.static_rate;

  exp::ShardedRunOptions threaded;
  threaded.shards = 4;
  threaded.threaded = true;
  const exp::ShardedRunResult four = exp::RunShardedSpec(spec, threaded);

  exp::ShardedRunOptions sequential = threaded;
  sequential.threaded = false;
  const exp::ShardedRunResult four_seq = exp::RunShardedSpec(spec, sequential);
  EXPECT_DOUBLE_EQ(four.app->MergedAvgTotalGoodput(),
                   four_seq.app->MergedAvgTotalGoodput())
      << "threaded vs sequential sharded execution diverged";
  EXPECT_EQ(four.app->Retries(), four_seq.app->Retries());
  EXPECT_EQ(four.app->HopTimeouts(), four_seq.app->HopTimeouts());

  exp::ShardedRunOptions single;
  single.shards = 1;
  const exp::ShardedRunResult one = exp::RunShardedSpec(spec, single);
  const exp::RunResult unsharded = exp::RunExecutor::RunOne(spec);
  EXPECT_DOUBLE_EQ(one.app->MergedAvgTotalGoodput(),
                   unsharded.app->metrics().AvgTotalGoodput())
      << "shards=1 must degenerate to the unsharded run";

  const double goodput1 = one.app->MergedAvgTotalGoodput();
  const double goodput4 = four.app->MergedAvgTotalGoodput();
  ASSERT_GT(goodput1, 0.0);
  EXPECT_NEAR(goodput4, goodput1, 0.2 * goodput1)
      << "4-shard goodput drifted from the single-shard run";
}

}  // namespace
}  // namespace topfull::scenario

// Sharded parallel DES: window protocol, partitioner, and end-to-end
// sharded application runs (determinism, conservation, cross-shard RPC).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/alibaba_demo.hpp"
#include "apps/online_boutique.hpp"
#include "common/partition.hpp"
#include "des/sharded_simulation.hpp"
#include "exp/harness.hpp"
#include "exp/sharded_run.hpp"
#include "sim/app.hpp"
#include "sim/shard_plan.hpp"
#include "sim/sharded_app.hpp"
#include "workload/generators.hpp"

namespace topfull {
namespace {

des::ShardedSimulation::Options EngineOptions(SimTime lookahead, bool threaded) {
  des::ShardedSimulation::Options options;
  options.lookahead = lookahead;
  options.threaded = threaded;
  return options;
}

// --- Window protocol ---------------------------------------------------------

TEST(ShardedSimulationTest, DeliversCrossShardMessagesAtExactTimestamps) {
  for (const bool threaded : {false, true}) {
    des::ShardedSimulation net(2, EngineOptions(Millis(2), threaded));
    std::vector<SimTime> delivered;
    net.shard(0).ScheduleAt(Millis(5), [&net, &delivered] {
      const SimTime when = net.shard(0).Now() + Millis(2);
      net.Post(0, 1, when, [&net, &delivered] {
        delivered.push_back(net.shard(1).Now());
      });
    });
    net.RunUntil(Millis(20));
    ASSERT_EQ(delivered.size(), 1u) << "threaded=" << threaded;
    EXPECT_EQ(delivered[0], Millis(7));
    EXPECT_EQ(net.Horizon(), Millis(20));
    EXPECT_EQ(net.shard(0).Now(), Millis(20));
    EXPECT_EQ(net.shard(1).Now(), Millis(20));
    EXPECT_EQ(net.TotalMessages(), 1u);
  }
}

TEST(ShardedSimulationTest, MessagesInFlightSurviveRunUntilBoundaries) {
  des::ShardedSimulation net(2, EngineOptions(Millis(5), false));
  SimTime delivered = -1;
  // Posted at t=9 ms for t=14 ms, but the first RunUntil stops at 10 ms.
  net.shard(0).ScheduleAt(Millis(9), [&] {
    net.Post(0, 1, Millis(14), [&] { delivered = net.shard(1).Now(); });
  });
  net.RunUntil(Millis(10));
  EXPECT_EQ(delivered, -1);
  net.RunUntil(Millis(20));
  EXPECT_EQ(delivered, Millis(14));
}

TEST(ShardedSimulationTest, SelfPostIsAPlainLocalEvent) {
  des::ShardedSimulation net(2, EngineOptions(Millis(5), false));
  SimTime t = -1;
  net.shard(0).ScheduleAt(Millis(1), [&] {
    net.Post(0, 0, Millis(2), [&] { t = net.shard(0).Now(); });
  });
  net.RunUntil(Millis(10));
  EXPECT_EQ(t, Millis(2));
  EXPECT_EQ(net.TotalMessages(), 0u);  // self-posts bypass the mailboxes
}

TEST(ShardedSimulationTest, ThreadedAndSequentialAreBitIdentical) {
  // A message storm bouncing between 3 shards; the (shard, time, id) log
  // must be identical with worker threads and without.
  auto run = [](bool threaded) {
    des::ShardedSimulation net(3, EngineOptions(Millis(1), threaded));
    // One log per shard: a shard's log is only ever touched by the thread
    // currently executing that shard, so the records stay race-free and
    // their order is the shard's own execution order.
    std::vector<std::vector<std::uint64_t>> log(3);
    // Chain: each hop records and forwards to the next shard until depth 0.
    struct Chain {
      des::ShardedSimulation* net;
      std::vector<std::vector<std::uint64_t>>* log;
      void Hop(int shard, int id, int depth) {
        (*log)[static_cast<std::size_t>(shard)].push_back(
            (static_cast<std::uint64_t>(net->shard(shard).Now()) << 8) ^
            static_cast<std::uint64_t>(id));
        if (depth == 0) return;
        const int to = (shard + 1) % 3;
        const SimTime when =
            net->shard(shard).Now() + Millis(1) + 100 * (id % 7);  // us jitter
        auto* self = this;
        net->Post(shard, to, when,
                  [self, to, id, depth] { self->Hop(to, id, depth - 1); });
      }
    };
    Chain chain{&net, &log};
    for (int id = 0; id < 40; ++id) {
      const int shard = id % 3;
      net.shard(shard).ScheduleAt(Millis(id % 11), [&chain, shard, id] {
        chain.Hop(shard, id, 6 + id % 5);
      });
    }
    net.RunUntil(Seconds(1));
    return log;
  };
  const auto sequential = run(false);
  const auto threaded = run(true);
  ASSERT_FALSE(sequential[0].empty());
  EXPECT_EQ(sequential, threaded);
}

TEST(ShardedSimulationTest, SingleShardBypassesTheProtocol) {
  des::ShardedSimulation net(1, EngineOptions(Millis(1), true));
  int fired = 0;
  net.shard(0).ScheduleAt(Millis(3), [&] { ++fired; });
  net.RunUntil(Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(net.Rounds(), 0u);  // no windows, no rounds
}

// --- Partitioner -------------------------------------------------------------

TEST(PartitionTest, LptBalancesAndIsDeterministic) {
  const std::vector<double> weights = {10, 1, 7, 7, 2, 9, 3, 1};
  const auto a = PackBinsLpt(weights, 3);
  const auto b = PackBinsLpt(weights, 3);
  EXPECT_EQ(a, b);
  std::vector<double> load(3, 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ASSERT_GE(a[i], 0);
    ASSERT_LT(a[i], 3);
    load[static_cast<std::size_t>(a[i])] += weights[i];
  }
  // Total 40 over 3 bins; LPT keeps the makespan within 4/3 of optimal.
  for (const double l : load) EXPECT_LE(l, 40.0 / 3.0 * 4.0 / 3.0 + 1e-9);
}

TEST(PartitionTest, SingleBinMapsEverythingToZero) {
  const auto a = PackBinsLpt({5, 1, 3}, 1);
  EXPECT_EQ(a, (std::vector<int>{0, 0, 0}));
}

TEST(ShardPlanTest, ReplicatedAlibabaIsClusterAligned) {
  apps::AlibabaDemoOptions options;
  options.replicas = 4;
  const auto demo = apps::MakeAlibabaDemo(options);
  sim::ShardPlanOptions plan_options;
  plan_options.num_shards = 4;
  const sim::ShardPlan plan = BuildShardPlan(*demo.app, plan_options);
  EXPECT_GE(plan.num_clusters, 4);
  EXPECT_TRUE(plan.cluster_aligned);
  // Replica copies never share services, so each copy's services must sit
  // on a single shard together with all APIs that use them.
  for (sim::ApiId a = 0; a < demo.app->NumApis(); ++a) {
    for (const sim::ServiceId s : demo.app->api(a).involved_services()) {
      EXPECT_EQ(plan.OwnerOf(s), plan.OriginOf(a));
    }
  }
  // All four shards are used.
  std::set<int> used(plan.service_owner.begin(), plan.service_owner.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardPlanTest, SingleClusterAppFallsBackToServiceSplit) {
  const auto app = apps::MakeOnlineBoutique({});
  sim::ShardPlanOptions options;
  options.num_shards = 2;
  const sim::ShardPlan plan = BuildShardPlan(*app, options);
  // The boutique's APIs all share the frontend: one cluster.
  EXPECT_EQ(plan.num_clusters, 1);
  EXPECT_FALSE(plan.cluster_aligned);
  std::set<int> used(plan.service_owner.begin(), plan.service_owner.end());
  EXPECT_EQ(used.size(), 2u);  // still split across both shards
}

TEST(ShardPlanTest, OneShardOwnsEverything) {
  const auto app = apps::MakeOnlineBoutique({});
  const sim::ShardPlan plan = BuildShardPlan(*app, {});
  for (const int owner : plan.service_owner) EXPECT_EQ(owner, 0);
  for (const int origin : plan.api_origin) EXPECT_EQ(origin, 0);
  EXPECT_TRUE(plan.cluster_aligned);
}

// --- End-to-end sharded runs -------------------------------------------------

/// Two disjoint 2-service chains -> two clusters, two APIs.
std::unique_ptr<sim::Application> MakeTwoClusterApp() {
  auto app = std::make_unique<sim::Application>("two-cluster", 7);
  for (int i = 0; i < 4; ++i) {
    sim::ServiceConfig config;
    config.name = "svc-" + std::to_string(i);
    config.mean_service_ms = 5.0 + i;
    config.threads = 4;
    config.initial_pods = 2;
    app->AddService(config);
  }
  sim::ApiSpec left("left", 1);
  left.AddPath(sim::ExecutionPath{sim::Chain({0, 1}), 1.0, {}});
  app->AddApi(std::move(left));
  sim::ApiSpec right("right", 1);
  right.AddPath(sim::ExecutionPath{sim::Chain({2, 3}), 1.0, {}});
  app->AddApi(std::move(right));
  app->Finalize();
  return app;
}

/// One 4-service chain -> a single cluster that must be split.
std::unique_ptr<sim::Application> MakeChainApp() {
  auto app = std::make_unique<sim::Application>("chain", 11);
  for (int i = 0; i < 4; ++i) {
    sim::ServiceConfig config;
    config.name = "svc-" + std::to_string(i);
    config.mean_service_ms = 4.0;
    config.threads = 4;
    config.initial_pods = 2;
    app->AddService(config);
  }
  sim::ApiSpec api("chain", 1);
  api.AddPath(sim::ExecutionPath{sim::Chain({0, 1, 2, 3}), 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  return app;
}

exp::RunSpec TwoClusterSpec() {
  exp::RunSpec spec;
  spec.label = "two-cluster";
  spec.duration_s = 8.0;
  spec.make_app = MakeTwoClusterApp;
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
    traffic.AddClosedLoop(exp::UniformUsers(app), workload::Schedule::Constant(400));
    traffic.AddOpenLoop(0, workload::Schedule::Constant(50));
    traffic.AddOpenLoop(1, workload::Schedule::Constant(50));
  };
  return spec;
}

std::string SerializeMerged(const sim::ShardedApp& app,
                            const std::vector<fault::FaultRecord>& fault_log) {
  std::string out;
  char buf[256];
  for (const auto& snap : app.MergedTimeline()) {
    std::snprintf(buf, sizeof buf, "t=%.17g\n", snap.t_end_s);
    out += buf;
    for (const auto& a : snap.apis) {
      std::snprintf(buf, sizeof buf, "api %llu %llu %llu %llu %llu %llu %.17g\n",
                    static_cast<unsigned long long>(a.offered),
                    static_cast<unsigned long long>(a.admitted),
                    static_cast<unsigned long long>(a.rejected_entry),
                    static_cast<unsigned long long>(a.rejected_service),
                    static_cast<unsigned long long>(a.completed),
                    static_cast<unsigned long long>(a.good), a.latency_mean_ms);
      out += buf;
    }
    for (const auto& s : snap.services) {
      std::snprintf(buf, sizeof buf, "svc %.17g %.17g %d %d\n", s.cpu_utilization,
                    s.avg_queue_delay_s, s.running_pods, s.outstanding);
      out += buf;
    }
  }
  std::snprintf(buf, sizeof buf, "timeouts=%llu retries=%llu inflight=%d remote=%llu\n",
                static_cast<unsigned long long>(app.HopTimeouts()),
                static_cast<unsigned long long>(app.Retries()), app.Inflight(),
                static_cast<unsigned long long>(app.RemoteCalls()));
  out += buf;
  for (const auto& r : fault_log) {
    std::snprintf(buf, sizeof buf, "fault t=%lld %s %s\n",
                  static_cast<long long>(r.at), fault::FaultTypeName(r.type),
                  r.service.c_str());
    out += buf;
  }
  return out;
}

std::string RunTwoCluster(int shards, bool threaded) {
  exp::ShardedRunOptions options;
  options.shards = shards;
  options.net_latency = Millis(1);
  options.threaded = threaded;
  const exp::ShardedRunResult r = exp::RunShardedSpec(TwoClusterSpec(), options);
  return SerializeMerged(*r.app, r.fault_log);
}

TEST(ShardedAppTest, AlignedPlanRunsWithoutCrossShardCalls) {
  exp::ShardedRunOptions options;
  options.shards = 2;
  const auto r = exp::RunShardedSpec(TwoClusterSpec(), options);
  EXPECT_TRUE(r.app->plan().cluster_aligned);
  EXPECT_EQ(r.app->RemoteCalls(), 0u);
  // Both shards did real work.
  EXPECT_GT(r.app->app(0).sim().EventsProcessed(), 1000u);
  EXPECT_GT(r.app->app(1).sim().EventsProcessed(), 1000u);
  // Conservation per API: everything offered is accounted for.
  for (const auto& t : r.app->MergedTotals()) {
    EXPECT_GT(t.offered, 0u);
    EXPECT_EQ(t.offered, t.admitted + t.rejected_entry);
  }
  EXPECT_GT(r.app->MergedAvgTotalGoodput(1.0), 0.0);
}

TEST(ShardedAppTest, FixedShardCountIsBitIdenticalAcrossRunsAndExecModes) {
  const std::string a = RunTwoCluster(2, /*threaded=*/true);
  const std::string b = RunTwoCluster(2, /*threaded=*/true);
  const std::string c = RunTwoCluster(2, /*threaded=*/false);
  EXPECT_EQ(a, b) << "repeated sharded runs diverged";
  EXPECT_EQ(a, c) << "threaded vs sequential diverged";
}

TEST(ShardedAppTest, SplitClusterRoutesHopsAcrossShards) {
  exp::RunSpec spec;
  spec.label = "chain-split";
  spec.duration_s = 6.0;
  spec.make_app = MakeChainApp;
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
    traffic.AddClosedLoop(exp::UniformUsers(app), workload::Schedule::Constant(200));
  };
  exp::ShardedRunOptions options;
  options.shards = 2;
  options.net_latency = Millis(1);
  const auto r = exp::RunShardedSpec(spec, options);
  EXPECT_FALSE(r.app->plan().cluster_aligned);
  EXPECT_GT(r.app->RemoteCalls(), 0u);
  const auto totals = r.app->MergedTotals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_GT(totals[0].completed, 0u);
  // Repeatability with remote calls in play.
  const auto r2 = exp::RunShardedSpec(spec, options);
  EXPECT_EQ(SerializeMerged(*r.app, r.fault_log),
            SerializeMerged(*r2.app, r2.fault_log));
  // And threaded == sequential.
  options.threaded = false;
  const auto r3 = exp::RunShardedSpec(spec, options);
  EXPECT_EQ(SerializeMerged(*r.app, r.fault_log),
            SerializeMerged(*r3.app, r3.fault_log));
}

TEST(ShardedAppTest, FaultsAreArmedOnTheOwningShardOnly) {
  exp::RunSpec spec = TwoClusterSpec();
  spec.faults.CrashPods("svc-2", Seconds(2), 1, Seconds(2));
  exp::ShardedRunOptions options;
  options.shards = 2;
  const auto r = exp::RunShardedSpec(spec, options);
  // The crash happened exactly once, on whichever shard owns svc-2.
  int crashes = 0;
  for (const auto& rec : r.fault_log) {
    if (rec.action == fault::FaultRecord::Action::kApply) ++crashes;
  }
  EXPECT_EQ(crashes, 1);
  const int owner = r.app->plan().OwnerOf(r.app->app(0).FindService("svc-2"));
  EXPECT_GT(r.app->app(owner).HopTimeouts() + 1, 0u);  // owner shard exists
}

TEST(ShardedAppTest, ReplicatedAlibabaShardsRunAligned) {
  exp::RunSpec spec;
  spec.label = "alibaba-x2";
  spec.duration_s = 4.0;
  spec.make_app = [] {
    apps::AlibabaDemoOptions options;
    options.replicas = 2;
    return apps::MakeAlibabaDemo(options).app;
  };
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
    traffic.AddClosedLoop(exp::UniformUsers(app),
                          workload::Schedule::Constant(2000));
  };
  exp::ShardedRunOptions options;
  options.shards = 2;
  const auto r = exp::RunShardedSpec(spec, options);
  EXPECT_TRUE(r.app->plan().cluster_aligned);
  EXPECT_EQ(r.app->RemoteCalls(), 0u);
  EXPECT_GT(r.app->app(0).sim().EventsProcessed(), 1000u);
  EXPECT_GT(r.app->app(1).sim().EventsProcessed(), 1000u);
  EXPECT_GT(r.app->MergedAvgTotalGoodput(1.0), 0.0);
}

}  // namespace
}  // namespace topfull

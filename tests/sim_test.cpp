// Unit tests for the microservice simulator substrate: call graphs, pods,
// services, metrics, and the Application request engine.
#include <gtest/gtest.h>

#include "sim/app.hpp"
#include "sim/call_graph.hpp"
#include "sim/pod.hpp"

namespace topfull::sim {
namespace {

// --- Call graphs -----------------------------------------------------------

TEST(CallGraphTest, ChainBuilderShape) {
  const CallNode root = Chain({0, 1, 2});
  EXPECT_EQ(root.service, 0);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].service, 1);
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].service, 2);
  EXPECT_EQ(CountNodes(root), 3u);
}

TEST(CallGraphTest, FanOutBuilderShape) {
  const CallNode root = FanOut(0, {1, 2, 3});
  EXPECT_TRUE(root.parallel);
  EXPECT_EQ(root.children.size(), 3u);
  EXPECT_EQ(CountNodes(root), 4u);
}

TEST(CallGraphTest, CollectServicesDeduplicates) {
  CallNode root = Chain({0, 1});
  root.children.push_back(Chain({1, 2}));
  std::set<ServiceId> services;
  CollectServices(root, services);
  EXPECT_EQ(services, (std::set<ServiceId>{0, 1, 2}));
}

TEST(ApiSpecTest, FinalizeNormalisesProbabilitiesAndUnionsServices) {
  ApiSpec spec("api", 1);
  spec.AddPath(ExecutionPath{Chain({0, 1}), 3.0, {}});
  spec.AddPath(ExecutionPath{Chain({0, 2}), 1.0, {}});
  spec.Finalize();
  EXPECT_DOUBLE_EQ(spec.paths()[0].probability, 0.75);
  EXPECT_DOUBLE_EQ(spec.paths()[1].probability, 0.25);
  EXPECT_EQ(spec.involved_services(), (std::set<ServiceId>{0, 1, 2}));
  EXPECT_TRUE(spec.Uses(2));
  EXPECT_FALSE(spec.Uses(9));
}

TEST(ApiSpecTest, SamplePathRespectsProbabilities) {
  ApiSpec spec("api", 1);
  spec.AddPath(ExecutionPath{Chain({0}), 0.8, {}});
  spec.AddPath(ExecutionPath{Chain({1}), 0.2, {}});
  spec.Finalize();
  EXPECT_EQ(spec.SamplePath(0.1), 0u);
  EXPECT_EQ(spec.SamplePath(0.79), 0u);
  EXPECT_EQ(spec.SamplePath(0.81), 1u);
  EXPECT_EQ(spec.SamplePath(0.999), 1u);
}

// --- Pods -------------------------------------------------------------------

TEST(PodTest, ServesSequentiallyPerThread) {
  des::Simulation sim;
  Pod pod(&sim, /*threads=*/1, /*max_queue=*/10);
  pod.Start();
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pod.Enqueue(Millis(10), [&](bool ok) {
      EXPECT_TRUE(ok);
      completions.push_back(sim.Now());
    }));
  }
  sim.RunUntil(Seconds(1));
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Millis(10));
  EXPECT_EQ(completions[1], Millis(20));
  EXPECT_EQ(completions[2], Millis(30));
}

TEST(PodTest, ParallelThreadsServeConcurrently) {
  des::Simulation sim;
  Pod pod(&sim, /*threads=*/4, /*max_queue=*/10);
  pod.Start();
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pod.Enqueue(Millis(10), [&](bool ok) { done += ok ? 1 : 0; }));
  }
  sim.RunUntil(Millis(11));
  EXPECT_EQ(done, 4);
}

TEST(PodTest, RejectsWhenQueueFull) {
  des::Simulation sim;
  Pod pod(&sim, /*threads=*/1, /*max_queue=*/2);
  pod.Start();
  auto noop = [](bool) {};
  EXPECT_TRUE(pod.Enqueue(Millis(10), noop));  // in service
  EXPECT_TRUE(pod.Enqueue(Millis(10), noop));  // queued (1)
  EXPECT_TRUE(pod.Enqueue(Millis(10), noop));  // queued (2)
  EXPECT_FALSE(pod.Enqueue(Millis(10), noop));
}

TEST(PodTest, RejectsWhenNotRunning) {
  des::Simulation sim;
  Pod pod(&sim, 1, 10);  // still starting
  EXPECT_FALSE(pod.Enqueue(Millis(1), [](bool) {}));
  pod.Start();
  EXPECT_TRUE(pod.Enqueue(Millis(1), [](bool) {}));
  pod.Kill();
  EXPECT_FALSE(pod.Enqueue(Millis(1), [](bool) {}));
}

TEST(PodTest, KillFailsQueuedAndInflightJobs) {
  des::Simulation sim;
  Pod pod(&sim, 1, 10);
  pod.Start();
  int ok_count = 0, fail_count = 0;
  auto cb = [&](bool ok) { ok ? ++ok_count : ++fail_count; };
  pod.Enqueue(Millis(100), cb);
  pod.Enqueue(Millis(100), cb);
  pod.Enqueue(Millis(100), cb);
  sim.ScheduleAt(Millis(10), [&]() { pod.Kill(); });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(ok_count, 0);
  EXPECT_EQ(fail_count, 3);
}

TEST(PodTest, HeadOfLineWaitGrowsWhileQueued) {
  des::Simulation sim;
  Pod pod(&sim, 1, 10);
  pod.Start();
  pod.Enqueue(Millis(100), [](bool) {});
  pod.Enqueue(Millis(100), [](bool) {});
  sim.RunUntil(Millis(50));
  EXPECT_EQ(pod.HeadOfLineWait(), Millis(50));
  EXPECT_EQ(pod.QueueLength(), 1);
  EXPECT_EQ(pod.InService(), 1);
  EXPECT_EQ(pod.Outstanding(), 2);
}

TEST(PodTest, WindowStatsAccounting) {
  des::Simulation sim;
  Pod pod(&sim, 1, 10);
  pod.Start();
  pod.Enqueue(Millis(100), [](bool) {});
  pod.Enqueue(Millis(100), [](bool) {});
  sim.RunUntil(Seconds(1));
  const PodWindowStats w = pod.DrainWindowStats();
  EXPECT_EQ(w.started, 2u);
  EXPECT_EQ(w.completed, 2u);
  EXPECT_NEAR(w.busy_seconds, 0.2, 1e-9);
  EXPECT_NEAR(w.queue_delay_max_s, 0.1, 1e-9);  // second job waited 100 ms
  // Drained: next window is empty.
  EXPECT_EQ(pod.DrainWindowStats().started, 0u);
}

// --- Services ---------------------------------------------------------------

ServiceConfig TestServiceConfig(const char* name, double mean_ms, int threads,
                                int pods) {
  ServiceConfig config;
  config.name = name;
  config.mean_service_ms = mean_ms;
  config.service_sigma = 0.0;  // deterministic service times for tests
  config.threads = threads;
  config.initial_pods = pods;
  return config;
}

TEST(ServiceTest, CapacityRpsFormula) {
  des::Simulation sim;
  Service svc(&sim, 0, TestServiceConfig("s", 10.0, 4, 2), Rng(1));
  // 2 pods x 4 threads / 10 ms = 800 rps.
  EXPECT_DOUBLE_EQ(svc.CapacityRps(), 800.0);
}

TEST(ServiceTest, DispatchBalancesAcrossPods) {
  des::Simulation sim;
  Service svc(&sim, 0, TestServiceConfig("s", 100.0, 1, 2), Rng(1));
  int done = 0;
  auto cb = [&](bool ok) { done += ok ? 1 : 0; };
  EXPECT_TRUE(svc.Dispatch(RequestInfo{}, 1.0, cb));
  EXPECT_TRUE(svc.Dispatch(RequestInfo{}, 1.0, cb));
  // Both should be in service concurrently (one per pod).
  sim.RunUntil(Millis(101));
  EXPECT_EQ(done, 2);
}

TEST(ServiceTest, ScaleUpAfterStartupDelay) {
  des::Simulation sim;
  Service svc(&sim, 0, TestServiceConfig("s", 10.0, 1, 1), Rng(1));
  svc.SetPodCount(3, Seconds(5));
  EXPECT_EQ(svc.RunningPods(), 1);
  EXPECT_EQ(svc.TotalPods(), 3);
  sim.RunUntil(Seconds(6));
  EXPECT_EQ(svc.RunningPods(), 3);
}

TEST(ServiceTest, ScaleDownKillsPods) {
  des::Simulation sim;
  Service svc(&sim, 0, TestServiceConfig("s", 10.0, 1, 4), Rng(1));
  svc.SetPodCount(1);
  EXPECT_EQ(svc.RunningPods(), 1);
}

TEST(ServiceTest, KillPodsFailureInjection) {
  des::Simulation sim;
  Service svc(&sim, 0, TestServiceConfig("s", 10.0, 1, 5), Rng(1));
  EXPECT_EQ(svc.KillPods(3), 3);
  EXPECT_EQ(svc.RunningPods(), 2);
  EXPECT_EQ(svc.KillPods(10), 2);
  EXPECT_EQ(svc.RunningPods(), 0);
  // With no running pods, dispatch sheds.
  EXPECT_FALSE(svc.Dispatch(RequestInfo{}, 1.0, [](bool) {}));
}

TEST(ServiceTest, UtilizationReflectsLoad) {
  des::Simulation sim;
  Service svc(&sim, 0, TestServiceConfig("s", 10.0, 2, 1), Rng(1));
  // Capacity 200 rps; submit 100 requests over 1 s => util ~0.5.
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(Millis(10 * i), [&]() {
      svc.Dispatch(RequestInfo{}, 1.0, [](bool) {});
    });
  }
  sim.RunUntil(Seconds(1));
  const ServiceWindowStats w = svc.CollectWindow(Seconds(1));
  EXPECT_NEAR(w.cpu_utilization, 0.5, 0.05);
  EXPECT_EQ(w.started, 100u);
}

TEST(ServiceTest, ZeroRunningPodsWithArrivalsReportsSaturation) {
  des::Simulation sim;
  Service svc(&sim, 0, TestServiceConfig("s", 10.0, 1, 1), Rng(1));
  svc.KillPods(1);
  svc.Dispatch(RequestInfo{}, 1.0, [](bool) {});
  const ServiceWindowStats w = svc.CollectWindow(Seconds(1));
  EXPECT_EQ(w.running_pods, 0);
  EXPECT_DOUBLE_EQ(w.cpu_utilization, 0.0);  // nothing started, nothing queued
}

// --- Application -------------------------------------------------------------

std::unique_ptr<Application> TwoTierApp(double sigma = 0.0) {
  auto app = std::make_unique<Application>("test", 1);
  ServiceConfig a = TestServiceConfig("A", 10.0, 4, 1);  // 400 rps
  ServiceConfig b = TestServiceConfig("B", 10.0, 1, 1);  // 100 rps
  a.service_sigma = sigma;
  b.service_sigma = sigma;
  const ServiceId sa = app->AddService(a);
  const ServiceId sb = app->AddService(b);

  ApiSpec api1("api1", 1);  // A -> B
  api1.AddPath(ExecutionPath{Chain({sa, sb}), 1.0, {}});
  app->AddApi(std::move(api1));
  ApiSpec api2("api2", 2);  // A only
  api2.AddPath(ExecutionPath{Chain({sa}), 1.0, {}});
  app->AddApi(std::move(api2));
  app->Finalize();
  return app;
}

TEST(ApplicationTest, FindByName) {
  auto app = TwoTierApp();
  EXPECT_EQ(app->FindService("B"), 1);
  EXPECT_EQ(app->FindService("missing"), kNoService);
  EXPECT_EQ(app->FindApi("api2"), 1);
  EXPECT_EQ(app->FindApi("missing"), kNoApi);
}

TEST(ApplicationTest, CompletedRequestLatencyIsSumOfStages) {
  auto app = TwoTierApp();
  Outcome outcome = Outcome::kRejectedEntry;
  SimTime latency = 0;
  app->Submit(0, [&](Outcome o, SimTime l) {
    outcome = o;
    latency = l;
  });
  app->RunFor(Seconds(1));
  EXPECT_EQ(outcome, Outcome::kCompleted);
  EXPECT_EQ(latency, Millis(20));  // 10 ms at A + 10 ms at B
}

TEST(ApplicationTest, MetricsCountGoodput) {
  auto app = TwoTierApp();
  for (int i = 0; i < 50; ++i) {
    app->sim().ScheduleAt(Millis(20 * i), [&app]() { app->Submit(1); });
  }
  app->RunFor(Seconds(2));
  const auto& totals = app->metrics().Totals()[1];
  EXPECT_EQ(totals.offered, 50u);
  EXPECT_EQ(totals.completed, 50u);
  EXPECT_EQ(totals.good, 50u);
}

TEST(ApplicationTest, EntryAdmissionRejectionsAreCounted) {
  class DenyAll : public EntryAdmission {
   public:
    bool Admit(ApiId, SimTime) override { return false; }
  };
  auto app = TwoTierApp();
  DenyAll deny;
  app->SetEntryAdmission(&deny);
  Outcome outcome = Outcome::kCompleted;
  app->Submit(0, [&](Outcome o, SimTime) { outcome = o; });
  app->RunFor(Seconds(1));
  EXPECT_EQ(outcome, Outcome::kRejectedEntry);
  EXPECT_EQ(app->metrics().Totals()[0].rejected_entry, 1u);
  EXPECT_EQ(app->metrics().Totals()[0].admitted, 0u);
}

TEST(ApplicationTest, DownstreamShedFailsWholeRequest) {
  // Saturate B far beyond its queue; api1 requests must fail as
  // kRejectedService while api2 (A only) still completes.
  auto app = TwoTierApp();
  int rejected = 0, completed = 0;
  for (int i = 0; i < 3000; ++i) {
    app->sim().ScheduleAt(Millis(i / 4), [&]() {
      app->Submit(0, [&](Outcome o, SimTime) {
        o == Outcome::kCompleted ? ++completed : ++rejected;
      });
    });
  }
  app->RunFor(Seconds(30));
  EXPECT_GT(rejected, 0);
  EXPECT_GT(completed, 0);
  EXPECT_EQ(rejected + completed, 3000);
  EXPECT_EQ(app->metrics().Totals()[0].rejected_service,
            static_cast<std::uint64_t>(rejected));
}

TEST(ApplicationTest, SloViolationsAreNotGoodput) {
  AppConfig config;
  config.slo = Millis(15);  // tighter than the 20 ms path latency
  auto app = std::make_unique<Application>("test", 1, config);
  const ServiceId sa = app->AddService(TestServiceConfig("A", 10.0, 4, 1));
  const ServiceId sb = app->AddService(TestServiceConfig("B", 10.0, 4, 1));
  ApiSpec api("api", 1);
  api.AddPath(ExecutionPath{Chain({sa, sb}), 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  app->Submit(0);
  app->RunFor(Seconds(1));
  EXPECT_EQ(app->metrics().Totals()[0].completed, 1u);
  EXPECT_EQ(app->metrics().Totals()[0].good, 0u);
}

TEST(ApplicationTest, ParallelFanOutLatencyIsMax) {
  auto app = std::make_unique<Application>("test", 1);
  const ServiceId root = app->AddService(TestServiceConfig("root", 10.0, 8, 1));
  const ServiceId fast = app->AddService(TestServiceConfig("fast", 5.0, 8, 1));
  const ServiceId slow = app->AddService(TestServiceConfig("slow", 50.0, 8, 1));
  ApiSpec api("api", 1);
  api.AddPath(ExecutionPath{FanOut(root, {fast, slow}), 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  SimTime latency = 0;
  app->Submit(0, [&](Outcome, SimTime l) { latency = l; });
  app->RunFor(Seconds(1));
  EXPECT_EQ(latency, Millis(60));  // 10 (root) + max(5, 50)
}

TEST(ApplicationTest, SequentialChildrenLatencyIsSum) {
  auto app = std::make_unique<Application>("test", 1);
  const ServiceId root = app->AddService(TestServiceConfig("root", 10.0, 8, 1));
  const ServiceId c1 = app->AddService(TestServiceConfig("c1", 5.0, 8, 1));
  const ServiceId c2 = app->AddService(TestServiceConfig("c2", 50.0, 8, 1));
  ApiSpec api("api", 1);
  CallNode node{root, 1.0, false, {CallNode{c1, 1.0, false, {}}, CallNode{c2, 1.0, false, {}}}};
  api.AddPath(ExecutionPath{node, 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  SimTime latency = 0;
  app->Submit(0, [&](Outcome, SimTime l) { latency = l; });
  app->RunFor(Seconds(1));
  EXPECT_EQ(latency, Millis(65));  // 10 + 5 + 50
}

TEST(ApplicationTest, WorkScalesServiceTime) {
  auto app = std::make_unique<Application>("test", 1);
  const ServiceId svc = app->AddService(TestServiceConfig("s", 10.0, 8, 1));
  ApiSpec api("api", 1);
  api.AddPath(ExecutionPath{CallNode{svc, 2.5, false, {}}, 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  SimTime latency = 0;
  app->Submit(0, [&](Outcome, SimTime l) { latency = l; });
  app->RunFor(Seconds(1));
  EXPECT_EQ(latency, Millis(25));
}

TEST(ApplicationTest, BranchingApiSamplesPaths) {
  auto app = std::make_unique<Application>("test", 1);
  const ServiceId sa = app->AddService(TestServiceConfig("A", 1.0, 8, 4));
  const ServiceId sb = app->AddService(TestServiceConfig("B", 1.0, 8, 4));
  ApiSpec api("api", 1);
  api.AddPath(ExecutionPath{Chain({sa}), 0.5, {}});
  api.AddPath(ExecutionPath{Chain({sb}), 0.5, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  for (int i = 0; i < 400; ++i) {
    app->sim().ScheduleAt(Millis(2 * i), [&app]() { app->Submit(0); });
  }
  app->RunFor(Seconds(2));
  // Both services saw traffic.
  const auto& snap = app->metrics().Timeline();
  ASSERT_FALSE(snap.empty());
  double a_busy = app->service(sa).pod(0).TotalBusySeconds();
  double b_busy = app->service(sb).pod(0).TotalBusySeconds();
  EXPECT_GT(a_busy, 0.0);
  EXPECT_GT(b_busy, 0.0);
}

TEST(PodTest, HeldSlotStaysBusyUntilRelease) {
  des::Simulation sim;
  Pod pod(&sim, /*threads=*/1, /*max_queue=*/10);
  pod.Start();
  Pod::HoldHandle hold;
  bool local_done = false;
  ASSERT_TRUE(pod.EnqueueHeld(Millis(10), [&](bool ok) { local_done = ok; }, &hold));
  int second_done = 0;
  ASSERT_TRUE(pod.Enqueue(Millis(10), [&](bool ok) { second_done += ok ? 1 : 0; }));
  sim.RunUntil(Millis(100));
  EXPECT_TRUE(local_done);
  // The single worker is still held: the second job never started.
  EXPECT_EQ(second_done, 0);
  EXPECT_EQ(pod.InService(), 1);
  pod.Release(hold);
  sim.RunUntil(Millis(200));
  EXPECT_EQ(second_done, 1);
}

TEST(PodTest, ReleaseAfterKillIsNoop) {
  des::Simulation sim;
  Pod pod(&sim, 1, 10);
  pod.Start();
  Pod::HoldHandle hold;
  pod.EnqueueHeld(Millis(10), [](bool) {}, &hold);
  sim.RunUntil(Millis(20));
  ASSERT_TRUE(hold.active);
  pod.Kill();
  pod.Release(hold);  // stale epoch: must not underflow busy state
  EXPECT_EQ(pod.InService(), 0);
}

TEST(ApplicationTest, BlockingRpcHoldsUpstreamThreads) {
  // root (1 thread, blocking) -> slow leaf. With sync RPC the root can
  // only have one request in flight end-to-end, so two requests complete
  // serially even though the root's own work is trivial.
  auto make = [](bool blocking) {
    auto app = std::make_unique<Application>("sync", 1);
    ServiceConfig root_config = TestServiceConfig("root", 1.0, 1, 1);
    root_config.blocking_rpc = blocking;
    const ServiceId root = app->AddService(root_config);
    const ServiceId leaf = app->AddService(TestServiceConfig("leaf", 100.0, 2, 1));
    ApiSpec api("api", 1);
    api.AddPath(ExecutionPath{Chain({root, leaf}), 1.0, {}});
    app->AddApi(std::move(api));
    app->Finalize();
    return app;
  };
  // Async: both requests overlap at the leaf (2 threads) => both ~101 ms.
  auto async_app = make(false);
  std::vector<SimTime> async_latency;
  for (int i = 0; i < 2; ++i) {
    async_app->Submit(0, [&](Outcome, SimTime l) { async_latency.push_back(l); });
  }
  async_app->RunFor(Seconds(2));
  ASSERT_EQ(async_latency.size(), 2u);
  EXPECT_EQ(async_latency[1], Millis(102));  // 1 ms root wait + 1 ms root + 100 ms leaf
  // Blocking: the second request waits for the root's only thread.
  auto sync_app = make(true);
  std::vector<SimTime> sync_latency;
  for (int i = 0; i < 2; ++i) {
    sync_app->Submit(0, [&](Outcome, SimTime l) { sync_latency.push_back(l); });
  }
  sync_app->RunFor(Seconds(2));
  ASSERT_EQ(sync_latency.size(), 2u);
  EXPECT_EQ(sync_latency[1], Millis(202));  // serialised end-to-end
}

TEST(ApplicationTest, DeterministicAcrossRuns) {
  auto run = []() {
    auto app = TwoTierApp(/*sigma=*/0.3);
    for (int i = 0; i < 500; ++i) {
      app->sim().ScheduleAt(Millis(2 * i), [&app]() { app->Submit(0); });
    }
    app->RunFor(Seconds(5));
    return app->metrics().Totals()[0].good;
  };
  EXPECT_EQ(run(), run());
}

TEST(MetricsTest, WindowLatencyPercentiles) {
  MetricsCollector metrics(1, Seconds(1));
  for (int i = 1; i <= 100; ++i) {
    metrics.OnOffered(0);
    metrics.OnAdmitted(0);
    metrics.OnCompleted(0, Millis(i));
  }
  const Snapshot& snap = metrics.Collect(Seconds(1), {});
  EXPECT_NEAR(snap.apis[0].latency_p50_ms, 50.5, 1.0);
  EXPECT_NEAR(snap.apis[0].latency_p99_ms, 99.0, 1.5);
  EXPECT_EQ(snap.apis[0].good, 100u);
}

TEST(MetricsTest, CollectDigestsMatchReferenceComputation) {
  // Regression for the window-close hot path: Collect sorts each API's
  // latency buffer once and reads every digest from it; the digests must
  // match an independent reference computation.
  const std::vector<double> latencies_ms = {7.0,  3.0, 912.5, 40.0, 40.0,
                                            11.5, 2.0, 300.0, 5.25, 64.0};
  MetricsCollector metrics(1, Seconds(1));
  for (const double ms : latencies_ms) {
    metrics.OnOffered(0);
    metrics.OnAdmitted(0);
    metrics.OnCompleted(0, Millis(ms));
  }
  const Snapshot& snap = metrics.Collect(Seconds(1), {});

  double sum = 0.0;
  for (const double ms : latencies_ms) sum += ms;
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_mean_ms,
                   sum / static_cast<double>(latencies_ms.size()));
  // Reference: the copying sort-per-call Percentile.
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_p50_ms, Percentile(latencies_ms, 50.0));
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_p95_ms, Percentile(latencies_ms, 95.0));
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_p99_ms, Percentile(latencies_ms, 99.0));
}

TEST(MetricsTest, CollectDigestsSingleSampleWindow) {
  MetricsCollector metrics(1, Seconds(1));
  metrics.OnOffered(0);
  metrics.OnAdmitted(0);
  metrics.OnCompleted(0, Millis(42.0));
  const Snapshot& snap = metrics.Collect(Seconds(1), {});
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_mean_ms, 42.0);
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_p50_ms, 42.0);
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_p95_ms, 42.0);
  EXPECT_DOUBLE_EQ(snap.apis[0].latency_p99_ms, 42.0);
}

TEST(MetricsTest, AvgGoodputOverRange) {
  MetricsCollector metrics(1, Seconds(1));
  for (int second = 1; second <= 4; ++second) {
    for (int i = 0; i < second * 10; ++i) {
      metrics.OnOffered(0);
      metrics.OnAdmitted(0);
      metrics.OnCompleted(0, Millis(1));
    }
    metrics.Collect(Seconds(second), {});
  }
  // Windows hold 10, 20, 30, 40 good responses.
  EXPECT_DOUBLE_EQ(metrics.AvgGoodput(0), 25.0);
  EXPECT_DOUBLE_EQ(metrics.AvgGoodput(0, 2.0), 35.0);       // windows 3, 4
  EXPECT_DOUBLE_EQ(metrics.AvgGoodput(0, 1.0, 3.0), 25.0);  // windows 2, 3
  EXPECT_DOUBLE_EQ(metrics.AvgTotalGoodput(), 25.0);
}

}  // namespace
}  // namespace topfull::sim

// Tests for the online SLO/overload monitor: synthetic window streams must
// reproduce exact event sequences, and the event stream must be invariant
// to request tracing being attached.
#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "core/rate_controller.hpp"
#include "obs/decision_log.hpp"
#include "obs/slo_monitor.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"
#include "workload/generators.hpp"

namespace topfull {
namespace {

sim::Snapshot Snap(double t_end_s, std::vector<sim::ApiWindow> apis,
                   std::vector<sim::ServiceWindow> services) {
  sim::Snapshot snap;
  snap.t_end_s = t_end_s;
  snap.apis = std::move(apis);
  snap.services = std::move(services);
  return snap;
}

sim::ApiWindow Api(std::uint64_t offered, std::uint64_t completed,
                   std::uint64_t good) {
  sim::ApiWindow w;
  w.offered = offered;
  w.admitted = offered;
  w.completed = completed;
  w.good = good;
  return w;
}

sim::ServiceWindow Delay(double avg_queue_delay_s) {
  sim::ServiceWindow w;
  w.avg_queue_delay_s = avg_queue_delay_s;
  return w;
}

// --- Burn-rate alerting ------------------------------------------------------

TEST(SloTest, BurnAlertOpensAndClosesOnFastAndSlowWindows) {
  obs::SloMonitorConfig config;
  config.window_s = 1.0;
  config.slo_target = 0.9;  // error budget 0.1
  config.fast_window_s = 2.0;
  config.slow_window_s = 4.0;
  config.burn_threshold = 2.0;
  obs::SloMonitor monitor({"api0"}, {}, config);

  // 4 healthy windows, 2 bad (40 % bad => burn 6 over the fast window),
  // then healthy again. The alert must open only once both windows agree
  // (t=6: fast 6, slow 3) and close only once both drop below threshold
  // (t=9: fast 0, slow 1.5).
  const std::uint64_t goods[] = {100, 100, 100, 100, 40, 40, 100, 100, 100};
  for (int i = 0; i < 9; ++i) {
    monitor.OnWindow(Snap(i + 1.0, {Api(100, 100, goods[i])}, {}));
  }
  const auto& events = monitor.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, obs::SloEventType::kSloBurnStart);
  EXPECT_DOUBLE_EQ(events[0].t_s, 6.0);
  EXPECT_EQ(events[0].subject, "total");
  EXPECT_DOUBLE_EQ(events[0].value, 6.0);  // fast-window burn at open
  EXPECT_DOUBLE_EQ(events[0].threshold, 2.0);
  EXPECT_EQ(events[1].type, obs::SloEventType::kSloBurnEnd);
  EXPECT_DOUBLE_EQ(events[1].t_s, 9.0);
  EXPECT_EQ(monitor.CountOf(obs::SloEventType::kSloBurnStart), 1u);
  EXPECT_EQ(monitor.CountOf(obs::SloEventType::kOverloadOnset), 0u);
}

TEST(SloTest, ZeroTrafficWindowsNeverBurn) {
  obs::SloMonitorConfig config;
  config.slo_target = 0.99;
  obs::SloMonitor monitor({"api0"}, {}, config);
  for (int i = 0; i < 40; ++i) {
    monitor.OnWindow(Snap(i + 1.0, {Api(0, 0, 0)}, {}));
  }
  EXPECT_TRUE(monitor.events().empty());
}

// --- Overload onset/clear (DAGOR queueing-delay signal) ----------------------

TEST(SloTest, OverloadHysteresisOnQueueingDelay) {
  obs::SloMonitorConfig config;
  config.overload_queue_delay_s = 0.02;
  config.overload_onset_windows = 2;
  config.overload_clear_windows = 3;
  obs::SloMonitor monitor({"api0"}, {"svcA"}, config);

  // over over | under over | under under under => onset at the 2nd over
  // window, no clear on the 1-window dip, clear after 3 consecutive under.
  const double delays[] = {0.05, 0.05, 0.01, 0.05, 0.01, 0.01, 0.01};
  for (int i = 0; i < 7; ++i) {
    monitor.OnWindow(Snap(i + 1.0, {Api(10, 10, 10)}, {Delay(delays[i])}));
  }
  const auto& events = monitor.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, obs::SloEventType::kOverloadOnset);
  EXPECT_DOUBLE_EQ(events[0].t_s, 2.0);
  EXPECT_EQ(events[0].subject, "svcA");
  EXPECT_DOUBLE_EQ(events[0].value, 0.05);
  EXPECT_DOUBLE_EQ(events[0].threshold, 0.02);
  EXPECT_EQ(events[1].type, obs::SloEventType::kOverloadClear);
  EXPECT_DOUBLE_EQ(events[1].t_s, 7.0);
  EXPECT_DOUBLE_EQ(events[1].value, 0.01);
}

// --- Per-API starvation ------------------------------------------------------

TEST(SloTest, StarvationRequiresTrafficWithZeroGoodput) {
  obs::SloMonitorConfig config;
  config.starvation_windows = 3;
  config.starvation_min_offered = 1;
  config.burn_threshold = 1e12;  // isolate starvation from burn alerting
  obs::SloMonitor monitor({"api0", "api1"}, {}, config);

  // api0: offered traffic, zero goodput for 3 windows, then recovers.
  // api1: idle (no offered traffic) the whole time -- never starved.
  for (int i = 0; i < 3; ++i) {
    monitor.OnWindow(Snap(i + 1.0, {Api(10, 0, 0), Api(0, 0, 0)}, {}));
  }
  monitor.OnWindow(Snap(4.0, {Api(10, 10, 5), Api(0, 0, 0)}, {}));
  const auto& events = monitor.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, obs::SloEventType::kStarvationStart);
  EXPECT_DOUBLE_EQ(events[0].t_s, 3.0);
  EXPECT_EQ(events[0].subject, "api0");
  EXPECT_EQ(events[1].type, obs::SloEventType::kStarvationEnd);
  EXPECT_DOUBLE_EQ(events[1].t_s, 4.0);
  EXPECT_EQ(events[1].subject, "api0");
}

// --- Controller oscillation --------------------------------------------------

TEST(SloTest, OscillationDetectedFromDecisionLogFlips) {
  obs::SloMonitorConfig config;
  config.oscillation_window_ticks = 8;
  config.oscillation_flips = 3;
  obs::SloMonitor monitor({"api0"}, {}, config);
  obs::DecisionLog log;
  monitor.SetDecisionLog(&log);

  // Alternating up/down rate changes across ticks: directions +,-,+,-
  // accumulate 3 reversals by the 4th tick.
  double rate = 100.0;
  for (int tick = 0; tick < 4; ++tick) {
    log.BeginTick(tick + 0.5, {}, {});
    const double next = tick % 2 == 0 ? rate + 10.0 : rate - 10.0;
    log.OnRateChange(0, rate, next);
    rate = next;
    log.EndTick();
  }
  monitor.OnWindow(Snap(5.0, {Api(10, 10, 10)}, {}));
  const auto& events = monitor.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, obs::SloEventType::kOscillation);
  EXPECT_DOUBLE_EQ(events[0].t_s, 5.0);
  EXPECT_EQ(events[0].subject, "api0");
  EXPECT_DOUBLE_EQ(events[0].value, 3.0);
  EXPECT_DOUBLE_EQ(events[0].threshold, 3.0);

  // Cooldown: the same alternation must rebuild from scratch before the
  // next event, and steady moves in one direction never fire.
  for (int tick = 4; tick < 6; ++tick) {
    log.BeginTick(tick + 0.5, {}, {});
    log.OnRateChange(0, rate, rate + 10.0);
    rate += 10.0;
    log.EndTick();
  }
  monitor.OnWindow(Snap(7.0, {Api(10, 10, 10)}, {}));
  EXPECT_EQ(monitor.CountOf(obs::SloEventType::kOscillation), 1u);
}

TEST(SloTest, NoOpRateChangesAndUnknownApisAreIgnored) {
  obs::SloMonitorConfig config;
  config.oscillation_flips = 1;
  obs::SloMonitor monitor({"api0"}, {}, config);
  obs::DecisionLog log;
  monitor.SetDecisionLog(&log);
  log.BeginTick(0.5, {}, {});
  log.OnRateChange(0, 100.0, 100.0);  // no movement
  log.OnRateChange(7, 100.0, 50.0);   // API out of range
  log.EndTick();
  monitor.OnWindow(Snap(1.0, {Api(1, 1, 1)}, {}));
  EXPECT_TRUE(monitor.events().empty());
}

// --- Event counters land in the registry -------------------------------------

TEST(SloTest, BoundRegistryMirrorsEventCounts) {
  obs::SloMonitorConfig config;
  config.overload_onset_windows = 1;
  obs::SloMonitor monitor({"api0"}, {"svcA"}, config);
  obs::MetricsRegistry registry;
  monitor.BindRegistry(&registry);
  monitor.OnWindow(Snap(1.0, {Api(10, 10, 10)}, {Delay(0.5)}));
  const auto* cell =
      registry.Find("topfull_slo_events_total", {{"type", "overload_onset"}});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->counter.value(), 1u);
  EXPECT_EQ(monitor.CountOf(obs::SloEventType::kOverloadOnset), 1u);
}

// --- Determinism: tracing on/off must not move any event ---------------------

TEST(SloTest, EventStreamIsIdenticalWithTracingOnAndOff) {
  const auto run = [](bool traced) {
    auto app = std::make_unique<sim::Application>("slo-app", 11);
    sim::ServiceConfig svc;
    svc.name = "B";
    svc.mean_service_ms = 10.0;
    svc.service_sigma = 0.25;
    svc.threads = 4;
    svc.initial_pods = 1;
    const sim::ServiceId b = app->AddService(svc);
    sim::ApiSpec api0("api0", 1);
    api0.AddPath(sim::ExecutionPath{sim::Chain({b}), 1.0, {}});
    app->AddApi(std::move(api0));
    app->Finalize();
    obs::RequestTracer tracer;
    if (traced) app->SetObserver(&tracer);
    auto monitor = obs::SloMonitor::ForApp(*app);
    auto controller = std::make_unique<core::TopFullController>(
        app.get(), std::make_unique<core::MimdRateController>(0.05, 0.01));
    controller->Start();
    obs::DecisionLog log;
    controller->SetDecisionObserver(&log);
    monitor->SetDecisionLog(&log);
    workload::TrafficDriver traffic(app.get());
    traffic.AddOpenLoop(0, workload::Schedule::Constant(800));  // ~2x capacity
    app->RunFor(Seconds(25));
    return std::make_pair(std::move(app), std::move(monitor));
  };
  const auto [app_off, mon_off] = run(false);
  const auto [app_on, mon_on] = run(true);
  const auto& a = mon_off->events();
  const auto& b = mon_on->events();
  EXPECT_FALSE(a.empty()) << "overloaded run should emit SLO events";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_s, b[i].t_s) << i;  // bit-exact
    EXPECT_EQ(a[i].type, b[i].type) << i;
    EXPECT_EQ(a[i].subject, b[i].subject) << i;
    EXPECT_EQ(a[i].value, b[i].value) << i;
    EXPECT_EQ(a[i].threshold, b[i].threshold) << i;
  }
}

}  // namespace
}  // namespace topfull

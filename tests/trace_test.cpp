// Tests for the synthetic Alibaba-style trace and its analyses.
#include <gtest/gtest.h>

#include <set>

#include "trace/synthetic_trace.hpp"

namespace topfull::trace {
namespace {

TEST(TraceTest, GeneratesConfiguredShape) {
  TraceConfig config;
  config.num_services = 2000;
  config.num_apis = 300;
  config.target_overloaded = 20;
  const SyntheticTrace trace = GenerateTrace(config, 1);
  EXPECT_EQ(trace.num_services, 2000);
  EXPECT_EQ(trace.api_paths.size(), 300u);
  EXPECT_EQ(trace.cpu_util.size(), 2000u);
  int overloaded = 0;
  for (const double u : trace.cpu_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    overloaded += u > config.util_threshold ? 1 : 0;
  }
  EXPECT_EQ(overloaded, 20);
}

TEST(TraceTest, PathsWithinLengthBounds) {
  TraceConfig config;
  config.num_services = 2000;
  config.num_apis = 200;
  config.min_path_len = 2;
  config.max_path_len = 8;
  const SyntheticTrace trace = GenerateTrace(config, 2);
  for (const auto& path : trace.api_paths) {
    EXPECT_GE(path.size(), 2u);
    EXPECT_LE(path.size(), 9u);  // segment embedding can add one past len
    std::set<int> unique(path.begin(), path.end());
    EXPECT_EQ(unique.size(), path.size()) << "duplicate service in path";
    for (const int s : path) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, config.num_services);
    }
  }
}

TEST(TraceTest, DeterministicForSeed) {
  TraceConfig config;
  config.num_services = 1000;
  config.num_apis = 100;
  config.target_overloaded = 10;
  const SyntheticTrace a = GenerateTrace(config, 7);
  const SyntheticTrace b = GenerateTrace(config, 7);
  EXPECT_EQ(a.api_paths, b.api_paths);
  EXPECT_EQ(a.cpu_util, b.cpu_util);
  const SyntheticTrace c = GenerateTrace(config, 8);
  EXPECT_NE(a.cpu_util, c.cpu_util);
}

TEST(StarvationAnalysisTest, HandConstructedCase) {
  SyntheticTrace trace;
  trace.num_services = 5;
  trace.cpu_util = {0.9, 0.9, 0.1, 0.1, 0.1};  // services 0, 1 overloaded
  // api0 touches both overloaded services; api1 contends at service 0;
  // api2 touches nothing overloaded.
  trace.api_paths = {{0, 1, 2}, {0, 3}, {3, 4}};
  const StarvationAnalysis result = AnalyzeStarvation(trace, 0.8);
  EXPECT_EQ(result.overloaded_services, 2);
  EXPECT_EQ(result.apis_involved, 2);
  EXPECT_EQ(result.vulnerable_apis, 1);  // only api0
  EXPECT_DOUBLE_EQ(result.vulnerable_fraction, 0.5);
}

TEST(StarvationAnalysisTest, NoContentionNoVulnerability) {
  SyntheticTrace trace;
  trace.num_services = 4;
  trace.cpu_util = {0.9, 0.9, 0.1, 0.1};
  trace.api_paths = {{0, 1}};  // multi-overloaded but alone everywhere
  const StarvationAnalysis result = AnalyzeStarvation(trace, 0.8);
  EXPECT_EQ(result.vulnerable_apis, 0);
}

TEST(ClusteringAnalysisTest, HandConstructedCase) {
  SyntheticTrace trace;
  trace.num_services = 6;
  trace.cpu_util = {0.9, 0.9, 0.9, 0.1, 0.1, 0.9};
  // Overloaded: 0, 1, 2, 5. api0 links 0-1; nothing links 2 or 5.
  trace.api_paths = {{0, 1}, {2, 3}, {4, 5}};
  const ClusteringAnalysis result = AnalyzeClustering(trace, 0.8);
  EXPECT_EQ(result.overloaded_services, 4);
  EXPECT_EQ(result.clusters, 3);  // {0,1}, {2}, {5}
  EXPECT_NEAR(result.avg_constraints_per_cluster, 4.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.isolated_fraction, 0.5);  // 2 and 5
  EXPECT_DOUBLE_EQ(result.avg_sharing_group, 2.0);  // the {0,1} group
}

TEST(ClusteringAnalysisTest, EmptyOverloadSet) {
  SyntheticTrace trace;
  trace.num_services = 3;
  trace.cpu_util = {0.1, 0.1, 0.1};
  trace.api_paths = {{0, 1, 2}};
  const ClusteringAnalysis result = AnalyzeClustering(trace, 0.8);
  EXPECT_EQ(result.clusters, 0);
  EXPECT_EQ(result.overloaded_services, 0);
}

TEST(TraceTest, DefaultConfigReproducesPaperNeighbourhood) {
  // The defaults are calibrated to the statistics the paper reports for
  // the Alibaba trace (§2: 44.4 % vulnerable; §6.4: 68 overloaded -> 57
  // clusters, 59 % isolated). Generous bands: this guards calibration
  // against regressions, not exact numbers.
  const TraceConfig config;
  const SyntheticTrace trace = GenerateTrace(config, 20210701);
  const auto clustering = AnalyzeClustering(trace, config.util_threshold);
  EXPECT_EQ(clustering.overloaded_services, 68);
  EXPECT_GE(clustering.clusters, 35);
  EXPECT_LE(clustering.clusters, 66);
  EXPECT_GT(clustering.isolated_fraction, 0.4);
  EXPECT_LT(clustering.isolated_fraction, 0.8);
  const auto starvation = AnalyzeStarvation(trace, config.util_threshold);
  EXPECT_GT(starvation.vulnerable_fraction, 0.25);
  EXPECT_LT(starvation.vulnerable_fraction, 0.7);
}

}  // namespace
}  // namespace topfull::trace

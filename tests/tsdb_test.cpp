// Tests for the embedded time-series store: ring retention, ordering,
// counter-reset accounting, histogram expansion, and the JSON round trip
// the replay path depends on.
#include "obs/tsdb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/prom_parser.hpp"
#include "obs/snapshot.hpp"
#include "obs/tsdb_plane.hpp"

namespace topfull {
namespace {

obs::Tsdb MakeTsdb(std::size_t retention = 4096) {
  obs::TsdbOptions options;
  options.retention = retention;
  return obs::Tsdb(options);
}

TEST(TsdbTest, RingRetentionKeepsTheNewestSamples) {
  obs::Tsdb tsdb = MakeTsdb(/*retention=*/8);
  const obs::Labels labels = {{"api", "a"}};
  const std::size_t total = 20;
  for (std::size_t i = 1; i <= total; ++i) {
    EXPECT_TRUE(tsdb.Append("ring_total", labels, obs::MetricType::kCounter,
                            static_cast<double>(i), static_cast<double>(i)));
  }
  const auto all = tsdb.All();
  ASSERT_EQ(all.size(), 1u);
  ASSERT_EQ(all[0].samples.size(), 8u);
  // Oldest 12 evicted: the window is exactly the last `retention` appends,
  // still in ascending time order after the ring wrapped.
  EXPECT_EQ(all[0].samples.front().t_s, 13.0);
  EXPECT_EQ(all[0].samples.back().t_s, 20.0);
  for (std::size_t i = 1; i < all[0].samples.size(); ++i) {
    EXPECT_LT(all[0].samples[i - 1].t_s, all[0].samples[i].t_s);
  }
  const obs::TsdbStats stats = tsdb.stats();
  EXPECT_EQ(stats.series, 1u);
  EXPECT_EQ(stats.appended, total);
  EXPECT_EQ(stats.evicted, total - 8u);
  EXPECT_EQ(stats.out_of_order, 0u);
}

TEST(TsdbTest, OutOfOrderAppendsAreDroppedAndCounted) {
  obs::Tsdb tsdb = MakeTsdb();
  EXPECT_TRUE(tsdb.Append("g", {}, obs::MetricType::kGauge, 5.0, 1.0));
  EXPECT_FALSE(tsdb.Append("g", {}, obs::MetricType::kGauge, 5.0, 2.0));
  EXPECT_FALSE(tsdb.Append("g", {}, obs::MetricType::kGauge, 3.0, 3.0));
  EXPECT_TRUE(tsdb.Append("g", {}, obs::MetricType::kGauge, 6.0, 4.0));
  const auto all = tsdb.All();
  ASSERT_EQ(all.size(), 1u);
  ASSERT_EQ(all[0].samples.size(), 2u);
  EXPECT_EQ(all[0].samples[1].value, 4.0);
  EXPECT_EQ(tsdb.stats().out_of_order, 2u);
  EXPECT_EQ(tsdb.stats().appended, 2u);
}

TEST(TsdbTest, CounterResetsAreDetectedOnCountersOnly) {
  obs::Tsdb tsdb = MakeTsdb();
  const double counter[] = {0.0, 10.0, 20.0, 5.0, 15.0, 2.0};
  const double gauge[] = {9.0, 3.0, 7.0, 1.0};
  double t = 1.0;
  for (double v : counter) {
    tsdb.Append("c_total", {}, obs::MetricType::kCounter, t++, v);
  }
  for (double v : gauge) {
    tsdb.Append("depth", {}, obs::MetricType::kGauge, t++, v);
  }
  // Two drops in the counter count as resets; a gauge moving down never
  // does.
  EXPECT_EQ(tsdb.stats().counter_resets, 2u);
}

TEST(TsdbTest, IterationIsSortedByNameThenLabelKey) {
  obs::Tsdb tsdb = MakeTsdb();
  tsdb.Append("zz_total", {{"api", "b"}}, obs::MetricType::kCounter, 1.0, 1.0);
  tsdb.Append("aa_total", {{"api", "b"}}, obs::MetricType::kCounter, 1.0, 1.0);
  tsdb.Append("aa_total", {{"api", "a"}}, obs::MetricType::kCounter, 1.0, 1.0);
  tsdb.Append("mm", {}, obs::MetricType::kGauge, 1.0, 1.0);
  const auto all = tsdb.All();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "aa_total");
  EXPECT_EQ(all[0].labels[0].second, "a");
  EXPECT_EQ(all[1].name, "aa_total");
  EXPECT_EQ(all[1].labels[0].second, "b");
  EXPECT_EQ(all[2].name, "mm");
  EXPECT_EQ(all[3].name, "zz_total");

  const auto matched = tsdb.Match("aa_total", nullptr);
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0].labels[0].second, "a");
  const auto filtered = tsdb.Match("aa_total", [](const obs::Labels& labels) {
    return labels[0].second == "b";
  });
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].labels[0].second, "b");
}

// In-process ingestion (AppendSnapshot) and scrape ingestion of the same
// registry's text exposition must produce the identical store: same series
// keys (histograms expanded to _bucket/_sum/_count with the same le
// labels), same types, same values.
TEST(TsdbTest, SnapshotAndScrapeIngestionAgree) {
  obs::MetricsRegistry registry;
  registry.GetCounter("req_total", "Requests.", {{"api", "a"}})->Inc(3);
  registry.GetCounter("req_total", "Requests.", {{"api", "b"}})->Inc(5);
  registry.GetGauge("depth", "Depth.", {})->Set(2.5);
  auto* histogram = registry.GetHistogram("latency_ms", "Latency.", {},
                                          obs::HistogramConfig{0.1, 1e4, 8});
  histogram->Record(1.0);
  histogram->Record(50.0);
  histogram->Record(50.0);
  histogram->Record(2e9);  // lands in the +Inf overflow bucket

  obs::SnapshotBuilder builder;
  builder.AddRegistry(registry);
  const auto snapshot = builder.Finish();

  obs::Tsdb direct = MakeTsdb();
  direct.AppendSnapshot(*snapshot, 1.0);

  obs::PromScrape scrape;
  std::string error;
  ASSERT_TRUE(
      obs::ParsePromText(obs::PromTextFromSnapshot(*snapshot), &scrape, &error))
      << error;
  obs::Tsdb scraped = MakeTsdb();
  scraped.AppendScrape(scrape, 1.0);

  const auto lhs = direct.All();
  const auto rhs = scraped.All();
  ASSERT_EQ(lhs.size(), rhs.size());
  ASSERT_GT(lhs.size(), 4u);  // histogram expanded into several series
  bool saw_bucket = false;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].name, rhs[i].name);
    EXPECT_EQ(lhs[i].label_key, rhs[i].label_key);
    EXPECT_EQ(lhs[i].type, rhs[i].type);
    ASSERT_EQ(lhs[i].samples.size(), 1u);
    ASSERT_EQ(rhs[i].samples.size(), 1u);
    EXPECT_EQ(lhs[i].samples[0].value, rhs[i].samples[0].value)
        << lhs[i].name << "{" << lhs[i].label_key << "}";
    saw_bucket |= lhs[i].name == "latency_ms_bucket";
  }
  EXPECT_TRUE(saw_bucket);

  // The expansion is cumulative and ends with the authoritative +Inf
  // bucket equal to _count.
  const auto buckets = direct.Match("latency_ms_bucket", nullptr);
  ASSERT_GE(buckets.size(), 2u);
  double inf_count = -1.0;
  for (const obs::SeriesSnapshot& series : buckets) {
    const double v = series.samples[0].value;
    EXPECT_GE(v, 0.0);
    for (const auto& [k, le] : series.labels) {
      if (k == "le" && le == "+Inf") inf_count = v;
    }
  }
  const auto count = direct.Match("latency_ms_count", nullptr);
  ASSERT_EQ(count.size(), 1u);
  EXPECT_EQ(inf_count, count[0].samples[0].value);
}

TEST(TsdbTest, JsonRoundTripIsByteExact) {
  obs::Tsdb tsdb = MakeTsdb(/*retention=*/64);
  // Values chosen to exercise the %.17g path: non-representable decimals,
  // tiny magnitudes, and a counter reset.
  tsdb.Append("c_total", {{"api", "checkout"}}, obs::MetricType::kCounter, 1.0,
              0.1 + 0.2);
  tsdb.Append("c_total", {{"api", "checkout"}}, obs::MetricType::kCounter, 2.0,
              1.0 / 3.0);
  tsdb.Append("g", {{"q", "a\"b\\c\nd"}}, obs::MetricType::kGauge, 1.5,
              6.02214076e23);
  tsdb.Append("g", {{"q", "a\"b\\c\nd"}}, obs::MetricType::kGauge, 2.5,
              -1.7976931348623157e308);

  const std::string first = obs::TsdbJson(tsdb);
  std::string error;
  const auto reloaded = obs::TsdbFromJson(first, &error);
  ASSERT_NE(reloaded, nullptr) << error;
  EXPECT_EQ(obs::TsdbJson(*reloaded), first);
  EXPECT_EQ(reloaded->options().retention, 64u);
}

TEST(TsdbTest, NonFiniteSamplesRoundTripAsJsonStrings) {
  obs::Tsdb tsdb = MakeTsdb();
  tsdb.Append("limit", {}, obs::MetricType::kGauge, 1.0,
              std::numeric_limits<double>::infinity());
  tsdb.Append("limit", {}, obs::MetricType::kGauge, 2.0,
              -std::numeric_limits<double>::infinity());
  tsdb.Append("limit", {}, obs::MetricType::kGauge, 3.0,
              std::numeric_limits<double>::quiet_NaN());

  const std::string json = obs::TsdbJson(tsdb);
  // Bare `inf`/`nan` are not JSON; the store must emit quoted markers.
  EXPECT_EQ(json.find("[1,inf"), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);
  EXPECT_NE(json.find("\"-inf\""), std::string::npos);
  EXPECT_NE(json.find("\"nan\""), std::string::npos);

  std::string error;
  const auto reloaded = obs::TsdbFromJson(json, &error);
  ASSERT_NE(reloaded, nullptr) << error;
  const auto all = reloaded->All();
  ASSERT_EQ(all.size(), 1u);
  ASSERT_EQ(all[0].samples.size(), 3u);
  EXPECT_TRUE(std::isinf(all[0].samples[0].value));
  EXPECT_GT(all[0].samples[0].value, 0.0);
  EXPECT_TRUE(std::isinf(all[0].samples[1].value));
  EXPECT_LT(all[0].samples[1].value, 0.0);
  EXPECT_TRUE(std::isnan(all[0].samples[2].value));
  EXPECT_EQ(obs::TsdbJson(*reloaded), json);
}

TEST(TsdbTest, FromJsonRejectsMalformedDocuments) {
  std::string error;
  EXPECT_EQ(obs::TsdbFromJson("{\"schema\":\"nope\",\"series\":[]}", &error),
            nullptr);
  EXPECT_NE(error.find("topfull.tsdb.v1"), std::string::npos);
  EXPECT_EQ(obs::TsdbFromJson("{\"schema\":\"topfull.tsdb.v1\"}", &error),
            nullptr);
  EXPECT_NE(error.find("series"), std::string::npos);
  EXPECT_EQ(obs::TsdbFromJson(
                "{\"schema\":\"topfull.tsdb.v1\",\"series\":[{\"name\":\"x\","
                "\"type\":\"gauge\",\"labels\":{},\"samples\":[[1,\"huge\"]]}]}",
                &error),
            nullptr);
  EXPECT_NE(error.find("malformed sample"), std::string::npos);
}

}  // namespace
}  // namespace topfull

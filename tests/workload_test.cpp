// Unit tests for schedules and traffic generators.
#include <gtest/gtest.h>

#include "sim/app.hpp"
#include "workload/generators.hpp"
#include "workload/schedule.hpp"

namespace topfull::workload {
namespace {

TEST(ScheduleTest, ConstantValue) {
  const Schedule s = Schedule::Constant(42.0);
  EXPECT_DOUBLE_EQ(s.At(0), 42.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(1000)), 42.0);
}

TEST(ScheduleTest, StepBreakpoints) {
  Schedule s = Schedule::Constant(10.0);
  s.Then(Seconds(5), 100.0).Then(Seconds(10), 50.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(4)), 10.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(5)), 100.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(9)), 100.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(10)), 50.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(1000)), 50.0);
}

TEST(ScheduleTest, BreakpointsAddedOutOfOrder) {
  Schedule s = Schedule::Constant(1.0);
  s.Then(Seconds(10), 3.0);
  s.Then(Seconds(5), 2.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(7)), 2.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(12)), 3.0);
}

TEST(ScheduleTest, DuplicateBreakpointOverwrites) {
  Schedule s = Schedule::Constant(1.0);
  s.Then(Seconds(5), 2.0).Then(Seconds(5), 9.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(6)), 9.0);
}

TEST(ScheduleTest, SpikeShape) {
  const Schedule s = Schedule::Spike(100, Seconds(60), Seconds(120), 900);
  EXPECT_DOUBLE_EQ(s.At(Seconds(59)), 100.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(60)), 900.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(179)), 900.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(180)), 100.0);
}

TEST(ScheduleTest, RampIsMonotone) {
  const Schedule s = Schedule::Ramp(0, 100, Seconds(10), Seconds(10));
  EXPECT_DOUBLE_EQ(s.At(Seconds(9)), 0.0);
  double prev = -1.0;
  for (int t = 10; t <= 20; ++t) {
    const double v = s.At(Seconds(t));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.At(Seconds(20)), 100.0);
  EXPECT_DOUBLE_EQ(s.At(Seconds(100)), 100.0);
}

TEST(ApiMixTest, SampleRespectsWeights) {
  ApiMix mix;
  mix.weights = {1.0, 3.0};
  EXPECT_EQ(mix.Sample(0.1), 0);
  EXPECT_EQ(mix.Sample(0.24), 0);
  EXPECT_EQ(mix.Sample(0.26), 1);
  EXPECT_EQ(mix.Sample(0.99), 1);
}

TEST(ApiMixTest, ZeroWeightNeverSampled) {
  ApiMix mix;
  mix.weights = {0.0, 1.0, 0.0};
  for (double u = 0.0; u < 1.0; u += 0.05) EXPECT_EQ(mix.Sample(u), 1);
}

sim::ServiceConfig FastService(const char* name, double capacity_rps) {
  sim::ServiceConfig config;
  config.name = name;
  config.threads = 8;
  config.mean_service_ms = 8000.0 / capacity_rps;
  config.service_sigma = 0.0;
  config.initial_pods = 1;
  return config;
}

std::unique_ptr<sim::Application> OneServiceApp(double capacity_rps = 10000.0) {
  auto app = std::make_unique<sim::Application>("wl-test", 3);
  const sim::ServiceId s = app->AddService(FastService("s", capacity_rps));
  sim::ApiSpec api("api", 1);
  api.AddPath(sim::ExecutionPath{sim::Chain({s}), 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  return app;
}

TEST(OpenLoopTest, RateMatchesSchedule) {
  auto app = OneServiceApp();
  TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, Schedule::Constant(500));
  app->RunFor(Seconds(20));
  const double offered = static_cast<double>(app->metrics().Totals()[0].offered) / 20.0;
  EXPECT_NEAR(offered, 500.0, 25.0);
}

TEST(OpenLoopTest, ZeroRateProducesNothingThenStarts) {
  auto app = OneServiceApp();
  TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, Schedule::Constant(0).Then(Seconds(5), 200));
  app->RunFor(Seconds(5));
  EXPECT_EQ(app->metrics().Totals()[0].offered, 0u);
  app->RunFor(Seconds(10));
  EXPECT_NEAR(static_cast<double>(app->metrics().Totals()[0].offered), 2000.0, 200.0);
}

TEST(ClosedLoopTest, UsersIssueAboutOneRequestPerSecond) {
  auto app = OneServiceApp();
  TrafficDriver traffic(app.get());
  ClosedLoopConfig config;
  config.mix.weights = {1.0};
  traffic.AddClosedLoop(config, Schedule::Constant(100));
  app->RunFor(Seconds(30));
  // Healthy service, ~1 ms responses: each user cycles roughly per think
  // time (1 s +/- jitter), so offered ~ users * duration.
  const double offered = static_cast<double>(app->metrics().Totals()[0].offered);
  EXPECT_NEAR(offered, 3000.0, 300.0);
}

TEST(ClosedLoopTest, UsersSelfThrottleUnderOverload) {
  // 1000 users against a 100 rps service: closed-loop demand collapses to
  // well under the open-loop 1000 rps because users wait on responses.
  auto app = OneServiceApp(/*capacity_rps=*/100.0);
  TrafficDriver traffic(app.get());
  ClosedLoopConfig config;
  config.mix.weights = {1.0};
  config.client_timeout = Seconds(2);
  traffic.AddClosedLoop(config, Schedule::Constant(1000));
  app->RunFor(Seconds(30));
  const double offered_rps =
      static_cast<double>(app->metrics().Totals()[0].offered) / 30.0;
  EXPECT_LT(offered_rps, 900.0);  // below the 1000 rps nominal demand
  EXPECT_GT(offered_rps, 100.0);
}

TEST(ClosedLoopTest, PoolGrowsWithSchedule) {
  auto app = OneServiceApp();
  TrafficDriver traffic(app.get());
  ClosedLoopConfig config;
  config.mix.weights = {1.0};
  auto& pool = traffic.AddClosedLoop(config, Schedule::Constant(10).Then(Seconds(10), 50));
  app->RunFor(Seconds(5));
  EXPECT_EQ(pool.LiveUsers(), 10);
  app->RunFor(Seconds(10));
  EXPECT_EQ(pool.LiveUsers(), 50);
}

TEST(ClosedLoopTest, EntryRejectionDoesNotKillUsers) {
  class DenyAll : public sim::EntryAdmission {
   public:
    bool Admit(sim::ApiId, SimTime) override { return false; }
  };
  auto app = OneServiceApp();
  DenyAll deny;
  app->SetEntryAdmission(&deny);
  TrafficDriver traffic(app.get());
  ClosedLoopConfig config;
  config.mix.weights = {1.0};
  traffic.AddClosedLoop(config, Schedule::Constant(50));
  app->RunFor(Seconds(20));
  // Users keep retrying after each rejection (think-time pacing).
  EXPECT_GT(app->metrics().Totals()[0].rejected_entry, 700u);
}

}  // namespace
}  // namespace topfull::workload

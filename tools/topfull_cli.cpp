// topfull — command-line driver for the simulator and controller.
//
//   topfull run    --app <boutique|trainticket|alibaba>
//                  [--controller <topfull|topfull-bw|mimd|dagor|breakwater|none>]
//                  [--users N | --rps R] [--duration S] [--surge T:N]
//                  [--priorities] [--probe-failures] [--hpa] [--seed S]
//                  [--csv FILE] [--threads N]
//                  [--trace-dir DIR] [--trace-sample R]
//                  [--fault-profile SPEC] [--fault-seed S]
//                  [--hop-timeout S] [--retries N] [--retry-backoff S]
//   topfull inspect --app <...>            # print topology + capacities
//   topfull train   [--episodes N] [--out FILE] [--threads N]   # pre-train
//   topfull report  [run options] [--out DIR]   # run + HTML report + summary
//   topfull compare BASELINE.json CANDIDATE.json [--rel-tol R] [--abs-tol A]
//   topfull serve   --dir DIR [--name NAME] [--port N] [--linger S]
//   topfull scenario list [--profile FILE]
//   topfull scenario run  [--controllers a,b,c] [--scenario NAME]
//                         [--profile FILE] [--json FILE] [--smoke]
//
// Examples:
//   topfull run --app boutique --controller topfull --users 2600 --duration 120
//   topfull run --app trainticket --controller dagor --users 800 --surge 40:3500
//   topfull run --app boutique --users 2600 --duration 60 --serve-port 9090
//   topfull inspect --app alibaba
//   topfull report --app boutique --users 2600 --surge 30:5200 --duration 90
//   topfull compare baseline.summary.json candidate.summary.json
//   topfull serve --dir topfull-report --port 9090
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/alibaba_demo.hpp"
#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "autoscale/hpa.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "exp/csv.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "exp/sharded_run.hpp"
#include "fault/profile.hpp"
#include "obs/json.hpp"
#include "obs/live.hpp"
#include "obs/profile.hpp"
#include "obs/query.hpp"
#include "obs/report.hpp"
#include "obs/rules.hpp"
#include "obs/tsdb_plane.hpp"
#include "scenario/library.hpp"
#include "scenario/profile.hpp"
#include "scenario/runner.hpp"

using namespace topfull;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double Num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      args.positional.push_back(key);
      continue;
    }
    key = key.substr(2);
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  topfull run --app <boutique|trainticket|alibaba>\n"
      "              [--controller <topfull|topfull-bw|mimd|dagor|breakwater|\n"
      "                             wisp|static|none>]\n"
      "              [--users N | --rps R] [--duration S] [--surge T:N]\n"
      "              [--priorities] [--probe-failures] [--hpa] [--seed S] [--csv FILE]\n"
      "              [--trace-dir DIR] [--trace-sample R]\n"
      "  topfull inspect --app <boutique|trainticket|alibaba>\n"
      "  topfull train [--episodes N] [--out FILE]\n"
      "  topfull report [run options] [--out DIR]\n"
      "                   run + self-contained HTML report, run summary JSON,\n"
      "                   Perfetto trace, decision log and Prometheus dump in DIR\n"
      "  topfull compare BASELINE.json CANDIDATE.json [--rel-tol R] [--abs-tol A]\n"
      "                   per-metric regression diff of two run summaries;\n"
      "                   exit 0 = no regression, 1 = regression, 2 = bad input\n"
      "  topfull serve --dir DIR [--name NAME] [--port N] [--linger S]\n"
      "                   serve a finished run's exported artifacts (the\n"
      "                   .metrics.prom / .summary.json written by report or\n"
      "                   --trace-dir) over HTTP; when the run wrote a\n"
      "                   .tsdb.json / .alerts.json it also answers /query\n"
      "                   and /alerts; --linger S exits after S s\n"
      "  topfull query EXPR (--url http://HOST:PORT | --dir DIR [--name NAME])\n"
      "                     [--time T | --start A --end B --step S]\n"
      "                   evaluate a PromQL-subset expression against a live\n"
      "                   run's /query endpoint or a saved .tsdb.json; prints\n"
      "                   the JSON result, exit 0 = ok, 1 = query error\n"
      "  topfull alerts (--url http://HOST:PORT | --dir DIR [--name NAME])\n"
      "                   print alert states + transitions (live /alerts\n"
      "                   endpoint, or the saved .alerts.json)\n"
      "  topfull scenario list [--profile FILE]\n"
      "                   print the workload-pathology scenario library\n"
      "  topfull scenario run [--controllers a,b,c] [--scenario NAME]\n"
      "                       [--profile FILE] [--json FILE] [--smoke]\n"
      "                   run the scenario x controller conformance matrix;\n"
      "                   exit 0 = every cell conforms to its invariants\n"
      "\n"
      "  --static-rate R  (run) per-API entry rate for --controller static\n"
      "  --serve-port N   (run) embedded observability server on 127.0.0.1:N\n"
      "                   while the run executes: /metrics /healthz /runs\n"
      "                   /snapshot.json (N = 0 picks an ephemeral port)\n"
      "  --publish-ms M   (run) min wall-clock ms between live snapshots\n"
      "                   (default 10)\n"
      "  --tsdb           (run) attach the time-series plane: in-memory TSDB\n"
      "                   fed at every metrics window close, SLO burn-rate\n"
      "                   alert rules, .tsdb.json/.alerts.json artifacts with\n"
      "                   --trace-dir, /query + /alerts with --serve-port\n"
      "                   (TOPFULL_TSDB=1 does the same)\n"
      "  --alert-floor F  (run) implies --tsdb; adds a goodput_floor_burn\n"
      "                   alert that fires while cluster-wide goodput < F rps\n"
      "  --threads N      worker-pool size for parallel rollouts/sweeps\n"
      "                   (overrides TOPFULL_THREADS; default: all cores)\n"
      "  --trace-dir DIR  export request spans (Perfetto JSON), the controller\n"
      "                   decision log (JSONL) and a Prometheus metrics dump to\n"
      "                   DIR (overrides TOPFULL_TRACE_DIR)\n"
      "  --trace-sample R fraction of requests traced, 0..1 (default 1;\n"
      "                   overrides TOPFULL_TRACE_SAMPLE)\n"
      "  --fault-profile  ';'-separated fault events, e.g.\n"
      "                   'crash:svc=ts-station,at=50,pods=25,restart=60;\n"
      "                    degrade:svc=frontend,at=30,for=40,factor=0.5' or\n"
      "                   'chaos:seed=7,events=6,horizon=120' (seeded random)\n"
      "  --fault-seed S   RNG seed for the fault engine's own stream\n"
      "  --hop-timeout S  per-hop RPC timeout in seconds (default 0 = none)\n"
      "  --retries N      bounded retries per hop (default 0)\n"
      "  --retry-backoff S delay before each retry (default 0)\n"
      "  --shards N       run one simulation across N engine shards\n"
      "                   (conservative-lookahead parallel DES; merged results)\n"
      "  --net-latency-ms L  one-way cross-shard RPC latency == lookahead (def 1)\n"
      "  --sequential     run the sharded protocol without worker threads\n"
      "  --replicas K     alibaba only: K independent 127-service copies\n");
  return 2;
}

std::unique_ptr<sim::Application> MakeApp(const Args& args) {
  const std::string app_name = args.Get("app", "boutique");
  const auto seed = static_cast<std::uint64_t>(args.Num("seed", 42));
  if (app_name == "boutique") {
    apps::BoutiqueOptions options;
    options.seed = seed;
    options.distinct_priorities = args.Has("priorities");
    options.probe_failures = args.Has("probe-failures");
    return apps::MakeOnlineBoutique(options);
  }
  if (app_name == "trainticket") {
    apps::TrainTicketOptions options;
    options.seed = seed;
    options.distinct_priorities = args.Has("priorities");
    options.probe_failures = args.Has("probe-failures");
    return apps::MakeTrainTicket(options);
  }
  if (app_name == "alibaba") {
    apps::AlibabaDemoOptions options;
    options.seed = seed == 42 ? 2021 : seed;
    options.replicas = static_cast<int>(args.Num("replicas", 1));
    return apps::MakeAlibabaDemo(options).app;
  }
  return nullptr;
}

/// Builds and starts the live observability plane when --serve-port was
/// given; returns null (and *rc untouched) when the flag is absent, or null
/// with *rc = 1 when the server failed to bind. `tsdb` (may be null) is
/// exposed through /query and /alerts.
std::unique_ptr<obs::LivePlane> MakeLivePlane(const Args& args,
                                              const obs::TsdbPlane* tsdb,
                                              int* rc) {
  if (!args.Has("serve-port")) return nullptr;
  obs::LiveOptions options;
  options.port = static_cast<int>(args.Num("serve-port", 0));
  options.publish_interval_s = args.Num("publish-ms", 10.0) / 1e3;
  auto live = std::make_unique<obs::LivePlane>(options);
  live->SetTsdb(tsdb);
  std::string error;
  if (!live->StartServer(&error)) {
    std::fprintf(stderr, "cannot start observability server: %s\n", error.c_str());
    *rc = 1;
    return nullptr;
  }
  std::printf("observability server on http://127.0.0.1:%d/ "
              "(/metrics /healthz /runs /snapshot.json%s)\n",
              live->port(), tsdb != nullptr ? " /query /alerts" : "");
  std::fflush(stdout);
  return live;
}

/// Builds the time-series plane when --tsdb / --alert-floor (or the
/// TOPFULL_TSDB env var) asks for one; null otherwise. Rules: the default
/// multi-window SLO burn pair, plus goodput_floor_burn when --alert-floor
/// gives a positive floor.
std::unique_ptr<obs::TsdbPlane> MakeTsdbPlane(const Args& args) {
  const char* env = std::getenv("TOPFULL_TSDB");
  const bool env_on =
      env != nullptr && *env != '\0' && std::string(env) != "0";
  if (!args.Has("tsdb") && !args.Has("alert-floor") && !env_on) return nullptr;
  auto plane = std::make_unique<obs::TsdbPlane>();
  for (obs::AlertRule& rule : obs::SloBurnRules()) {
    plane->rules().AddAlert(std::move(rule));
  }
  const double floor = args.Num("alert-floor", 0.0);
  if (floor > 0) plane->rules().AddAlert(obs::GoodputFloorRule(floor));
  return plane;
}

/// Minimal HTTP GET against the embedded observability server (numeric
/// IPv4 hosts only — the server binds 127.0.0.1). Fills the status code
/// and response body; false on connect/transport errors.
bool HttpGet(const std::string& host, int port, const std::string& target,
             int* status, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos ||
      std::sscanf(response.c_str(), "HTTP/1.1 %d", status) != 1) {
    return false;
  }
  *body = response.substr(header_end + 4);
  return true;
}

/// Splits "http://HOST:PORT" (or "HOST:PORT") for HttpGet.
bool ParseServerUrl(std::string url, std::string* host, int* port) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) == 0) url = url.substr(scheme.size());
  while (!url.empty() && url.back() == '/') url.pop_back();
  const std::size_t colon = url.rfind(':');
  if (colon == std::string::npos) return false;
  *host = url.substr(0, colon);
  *port = std::atoi(url.substr(colon + 1).c_str());
  return !host->empty() && *port > 0;
}

/// Percent-encodes a query-string value (the expression may carry spaces,
/// '+', '&', brackets...).
std::string PercentEncode(const std::string& text) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    const bool safe = (u >= 'a' && u <= 'z') || (u >= 'A' && u <= 'Z') ||
                      (u >= '0' && u <= '9') || u == '-' || u == '_' ||
                      u == '.' || u == '~';
    if (safe) {
      out += c;
    } else {
      out += '%';
      out += hex[u >> 4];
      out += hex[u & 0xf];
    }
  }
  return out;
}

/// Resolves --controller via the shared exp name table; unknown names are
/// an explicit error instead of silently running uncontrolled.
bool ResolveVariant(const std::string& name, exp::Variant* variant) {
  const auto resolved = exp::VariantFromName(name);
  if (!resolved.has_value()) {
    std::fprintf(stderr, "unknown --controller '%s'\n", name.c_str());
    return false;
  }
  *variant = *resolved;
  return true;
}

bool VariantNeedsPolicy(exp::Variant variant) {
  return variant == exp::Variant::kTopFull ||
         variant == exp::Variant::kTopFullNoCluster ||
         variant == exp::Variant::kTopFullBw;
}

int CmdInspect(const Args& args) {
  auto app = MakeApp(args);
  if (!app) return Usage();
  std::printf("application: %s — %d microservices, %d external APIs\n\n",
              app->name().c_str(), app->NumServices(), app->NumApis());
  Table services("microservices");
  services.SetHeader({"service", "pods", "threads", "mean svc (ms)", "capacity (rps)"});
  for (int s = 0; s < app->NumServices(); ++s) {
    const auto& config = app->service(s).config();
    services.AddRow({config.name, std::to_string(app->service(s).RunningPods()),
                     std::to_string(config.threads), Fmt(config.mean_service_ms, 1),
                     Fmt(app->service(s).CapacityRps(), 0)});
  }
  services.Print();
  std::printf("\n");
  Table apis("APIs");
  apis.SetHeader({"API", "priority", "paths", "services on path(s)"});
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    std::string involved;
    for (const sim::ServiceId s : app->api(a).involved_services()) {
      if (!involved.empty()) involved += " ";
      involved += app->service(s).name();
    }
    if (involved.size() > 70) involved = involved.substr(0, 67) + "...";
    apis.AddRow({app->api(a).name(), std::to_string(app->api(a).business_priority()),
                 std::to_string(app->api(a).paths().size()), involved});
  }
  apis.Print();
  return 0;
}

/// `run --shards N` (N > 1): the same run sharded across N engine shards
/// via the conservative-lookahead parallel DES. Supports the core run
/// options (--controller/--users/--rps/--surge/--duration/--seed/--replicas,
/// fault profiles, RPC knobs); HPA/CSV are unsharded-only for now.
int CmdRunSharded(const Args& args) {
  obs::ScopedTimer run_timer("cli/run-sharded");
  const int shards = static_cast<int>(args.Num("shards", 1));
  if (args.Has("hpa") || args.Has("csv")) {
    std::fprintf(stderr, "--hpa/--csv are not supported with --shards\n");
    return 2;
  }

  exp::RunSpec spec;
  spec.label = args.Get("app", "boutique");
  spec.duration_s = args.Num("duration", 120);
  if (!ResolveVariant(args.Get("controller", "topfull"), &spec.variant)) {
    return 2;
  }
  spec.static_rate = args.Num("static-rate", 0.0);
  std::shared_ptr<rl::GaussianPolicy> policy;
  if (VariantNeedsPolicy(spec.variant)) {
    policy = exp::GetPretrainedPolicy();
    spec.policy = policy.get();
  }
  spec.make_app = [args] {
    auto app = MakeApp(args);
    if (args.Has("hop-timeout") || args.Has("retries") ||
        args.Has("retry-backoff")) {
      app->ConfigureRpc(Seconds(args.Num("hop-timeout", 0)),
                        static_cast<int>(args.Num("retries", 0)),
                        Seconds(args.Num("retry-backoff", 0)));
    }
    return app;
  };

  double surge_t = -1, surge_value = 0;
  if (args.Has("surge")) {
    const std::string surge = args.Get("surge");
    const auto colon = surge.find(':');
    if (colon == std::string::npos) return Usage();
    surge_t = std::atof(surge.substr(0, colon).c_str());
    surge_value = std::atof(surge.substr(colon + 1).c_str());
  }
  spec.traffic = [args, surge_t, surge_value](workload::TrafficDriver& traffic,
                                              sim::Application& app) {
    if (args.Has("rps")) {
      const double per_api = args.Num("rps", 1000) / app.NumApis();
      for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
        workload::Schedule schedule = workload::Schedule::Constant(per_api);
        if (surge_t >= 0) {
          schedule.Then(Seconds(surge_t), surge_value / app.NumApis());
        }
        traffic.AddOpenLoop(a, std::move(schedule));
      }
    } else {
      workload::Schedule schedule =
          workload::Schedule::Constant(args.Num("users", 1000));
      if (surge_t >= 0) schedule.Then(Seconds(surge_t), surge_value);
      traffic.AddClosedLoop(exp::UniformUsers(app), std::move(schedule));
    }
  };

  if (args.Has("fault-profile")) {
    const auto probe = MakeApp(args);
    if (!probe) return Usage();
    std::string error;
    const auto parsed =
        fault::ParseFaultProfile(args.Get("fault-profile"), *probe, &error);
    if (!parsed) {
      std::fprintf(stderr, "bad --fault-profile: %s\n", error.c_str());
      return 2;
    }
    spec.faults = *parsed;
  }
  if (args.Has("fault-seed")) {
    spec.fault_seed = static_cast<std::uint64_t>(args.Num("fault-seed", 0));
  }

  exp::ShardedRunOptions options;
  options.shards = shards;
  options.net_latency = Millis(args.Num("net-latency-ms", 1.0));
  options.threaded = !args.Has("sequential");

  // The sharded runner reads telemetry config from the environment (it
  // builds one Telemetry per shard internally), so forward the CLI flags.
  if (args.Has("trace-dir")) {
    ::setenv("TOPFULL_TRACE_DIR", args.Get("trace-dir").c_str(), 1);
  }
  if (args.Has("trace-sample")) {
    ::setenv("TOPFULL_TRACE_SAMPLE", args.Get("trace-sample").c_str(), 1);
  }

  std::unique_ptr<obs::TsdbPlane> tsdb = MakeTsdbPlane(args);
  spec.tsdb = tsdb.get();
  int live_rc = 0;
  std::unique_ptr<obs::LivePlane> live = MakeLivePlane(args, tsdb.get(), &live_rc);
  if (live_rc != 0) return live_rc;
  spec.live = live.get();

  std::printf("running %s with %s for %.0f s across %d shards "
              "(lookahead %.1f ms, %s)...\n",
              spec.label.c_str(), exp::VariantName(spec.variant).c_str(),
              spec.duration_s, shards, ToMillis(options.net_latency),
              options.threaded ? "threaded" : "sequential");
  exp::ShardedRunResult result = exp::RunShardedSpec(spec, options);
  sim::ShardedApp& app = *result.app;

  if (!result.fault_log.empty()) {
    std::printf("faults: %zu state changes\n", result.fault_log.size());
    for (const auto& r : result.fault_log) {
      std::printf("  t=%7.2fs %-20s %-8s %s%s%s severity=%.2f count=%d\n",
                  ToSeconds(r.at), fault::FaultTypeName(r.type),
                  fault::FaultActionName(r.action), r.service.empty() ? "" : "svc=",
                  r.service.c_str(), r.service.empty() ? "(cluster)" : "",
                  r.severity, r.count);
    }
  }

  const auto& plan = app.plan();
  std::printf("shard plan: %d clusters over %d shards (%s)\n",
              plan.num_clusters, shards,
              plan.cluster_aligned ? "cluster-aligned"
                                   : "split clusters: cross-shard RPC in play");

  Table table("per-API results (whole run, merged across shards)");
  table.SetHeader({"API", "shard", "avg offered", "avg goodput"});
  const auto totals = app.MergedTotals();
  const sim::Application& app0 = app.app(0);
  for (sim::ApiId a = 0; a < app0.NumApis(); ++a) {
    table.AddRow({app0.api(a).name(), std::to_string(plan.OriginOf(a)),
                  Fmt(static_cast<double>(totals[a].offered) / spec.duration_s, 0),
                  Fmt(static_cast<double>(totals[a].good) / spec.duration_s, 0)});
  }
  table.Print();
  std::printf("total avg goodput: %.0f rps\n", app.MergedAvgTotalGoodput());
  if (tsdb != nullptr) {
    std::printf("alerts: %zu rules, %zu transitions\n",
                tsdb->rules().rule_count(),
                tsdb->rules().transitions().size());
  }
  std::printf("cross-shard RPCs: %llu, sync rounds: %llu\n",
              static_cast<unsigned long long>(app.RemoteCalls()),
              static_cast<unsigned long long>(app.engine().Rounds()));

  Table shard_table("per-shard engine stats");
  shard_table.SetHeader({"shard", "events", "busy (s)", "blocked (s)",
                         "msgs out", "msgs in"});
  const auto& stats = app.engine().Stats();
  for (int i = 0; i < shards; ++i) {
    const auto& s = stats[static_cast<std::size_t>(i)];
    shard_table.AddRow({std::to_string(i),
                        std::to_string(app.app(i).sim().EventsProcessed()),
                        Fmt(s.busy_s, 2), Fmt(s.blocked_s, 2),
                        std::to_string(s.messages_sent),
                        std::to_string(s.messages_delivered)});
  }
  shard_table.Print();
  return 0;
}

int CmdRun(const Args& args) {
  if (args.Num("shards", 1) > 1) return CmdRunSharded(args);
  obs::ScopedTimer run_timer("cli/run");
  auto app = MakeApp(args);
  if (!app) return Usage();
  const std::string controller_name = args.Get("controller", "topfull");
  exp::Variant variant;
  if (!ResolveVariant(controller_name, &variant)) return 2;

  if (args.Has("hop-timeout") || args.Has("retries") || args.Has("retry-backoff")) {
    app->ConfigureRpc(Seconds(args.Num("hop-timeout", 0)),
                      static_cast<int>(args.Num("retries", 0)),
                      Seconds(args.Num("retry-backoff", 0)));
  }

  fault::FaultSchedule faults;
  if (args.Has("fault-profile")) {
    std::string error;
    const auto parsed = fault::ParseFaultProfile(args.Get("fault-profile"), *app, &error);
    if (!parsed) {
      std::fprintf(stderr, "bad --fault-profile: %s\n", error.c_str());
      return 2;
    }
    faults = *parsed;
  }

  exp::TelemetryOptions trace_options = exp::TelemetryOptions::FromEnv();
  if (args.Has("trace-dir")) trace_options.dir = args.Get("trace-dir");
  if (args.Has("trace-sample")) {
    trace_options.sample_rate = args.Num("trace-sample", 1.0);
  }
  exp::Telemetry telemetry(trace_options);
  telemetry.Attach(*app);

  // The TSDB feeder chains after the SLO monitor, so it attaches second.
  std::unique_ptr<obs::TsdbPlane> tsdb = MakeTsdbPlane(args);
  if (tsdb != nullptr) {
    tsdb->Attach(*app);
    telemetry.SetTsdb(tsdb.get());
  }

  std::shared_ptr<rl::GaussianPolicy> policy;
  if (VariantNeedsPolicy(variant)) policy = exp::GetPretrainedPolicy();
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy.get(), {},
                     /*mimd_decrease=*/0.05, /*mimd_increase=*/0.01,
                     args.Num("static-rate", 0.0));
  if (controllers.topfull() != nullptr) telemetry.Attach(*controllers.topfull());

  std::unique_ptr<autoscale::Cluster> cluster;
  std::unique_ptr<autoscale::HorizontalPodAutoscaler> hpa;
  if (args.Has("hpa")) {
    cluster = std::make_unique<autoscale::Cluster>(&app->sim(),
                                                   autoscale::ClusterConfig{});
    hpa = std::make_unique<autoscale::HorizontalPodAutoscaler>(
        app.get(), cluster.get(), autoscale::HpaConfig{});
    hpa->Start();
  }

  const double duration = args.Num("duration", 120);
  workload::TrafficDriver traffic(app.get());
  // --surge T:N switches the user count / rate to N at time T.
  double surge_t = -1, surge_value = 0;
  if (args.Has("surge")) {
    const std::string surge = args.Get("surge");
    const auto colon = surge.find(':');
    if (colon == std::string::npos) return Usage();
    surge_t = std::atof(surge.substr(0, colon).c_str());
    surge_value = std::atof(surge.substr(colon + 1).c_str());
  }
  if (args.Has("rps")) {
    const double per_api = args.Num("rps", 1000) / app->NumApis();
    for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
      workload::Schedule schedule = workload::Schedule::Constant(per_api);
      if (surge_t >= 0) schedule.Then(Seconds(surge_t), surge_value / app->NumApis());
      traffic.AddOpenLoop(a, std::move(schedule));
    }
  } else {
    workload::Schedule schedule = workload::Schedule::Constant(args.Num("users", 1000));
    if (surge_t >= 0) schedule.Then(Seconds(surge_t), surge_value);
    traffic.AddClosedLoop(exp::UniformUsers(*app), std::move(schedule));
  }

  fault::FaultInjector injector(
      app.get(), faults,
      args.Has("fault-seed")
          ? static_cast<std::uint64_t>(args.Num("fault-seed", 0))
          : fault::FaultInjector::kDefaultSeed);
  if (cluster != nullptr) injector.AttachCluster(cluster.get());
  if (!faults.empty()) injector.Arm();

  int live_rc = 0;
  std::unique_ptr<obs::LivePlane> live = MakeLivePlane(args, tsdb.get(), &live_rc);
  if (live_rc != 0) return live_rc;

  std::printf("running %s with %s for %.0f s...\n", app->name().c_str(),
              exp::VariantName(variant).c_str(), duration);
  {
    obs::ScopedTimer timer("cli/simulate");
    if (live == nullptr) {
      app->RunFor(Seconds(duration));
    } else {
      obs::LiveSources sources;
      sources.shards.push_back(
          {app.get(), telemetry.tracer(), telemetry.monitor()});
      sources.label = app->name();
      sources.duration_s = duration;
      const SimTime end = app->sim().Now() + Seconds(duration);
      live->MaybePublish(sources);
      while (app->sim().Now() < end) {
        app->RunUntil(std::min(app->sim().Now() + Millis(100), end));
        live->MaybePublish(sources);
      }
      live->Publish(sources, /*finished=*/true);
    }
  }
  if (tsdb != nullptr) tsdb->FinishRules(ToSeconds(app->sim().Now()));

  if (!injector.Log().empty()) {
    std::printf("faults: %d state changes from %zu scheduled events\n",
                injector.InjectionCount(), injector.schedule().size());
    for (const auto& r : injector.Log()) {
      std::printf("  t=%7.2fs %-20s %-8s %s%s%s severity=%.2f count=%d\n",
                  ToSeconds(r.at), fault::FaultTypeName(r.type),
                  fault::FaultActionName(r.action), r.service.empty() ? "" : "svc=",
                  r.service.c_str(), r.service.empty() ? "(cluster)" : "",
                  r.severity, r.count);
    }
  }

  Table table("per-API results (whole run)");
  table.SetHeader({"API", "avg offered", "avg goodput", "final p95 (ms)",
                   "rate limit"});
  const auto& snap = app->metrics().Latest();
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    const auto& totals = app->metrics().Totals()[a];
    std::string limit = "-";
    if (controllers.topfull() != nullptr) {
      const auto value = controllers.topfull()->RateLimit(a);
      limit = value ? Fmt(*value, 0) : "uncapped";
    }
    table.AddRow({app->api(a).name(),
                  Fmt(static_cast<double>(totals.offered) / duration, 0),
                  Fmt(app->metrics().AvgGoodput(a), 0),
                  Fmt(snap.apis[a].latency_p95_ms, 0), limit});
  }
  table.Print();
  std::printf("total avg goodput: %.0f rps\n", app->metrics().AvgTotalGoodput());
  if (tsdb != nullptr) {
    std::printf("alerts: %zu rules, %zu transitions\n",
                tsdb->rules().rule_count(),
                tsdb->rules().transitions().size());
  }

  if (telemetry.enabled()) {
    const exp::TelemetrySummary summary = telemetry.Export(
        *app, exp::SanitizeFileName(app->name()), controllers.topfull(),
        injector.Log().empty() ? nullptr : &injector.Log(),
        /*log_stderr=*/false);
    std::string paths;
    for (const std::string& path : summary.paths) {
      if (!paths.empty()) paths += " ";
      paths += path;
    }
    std::printf(
        "telemetry: %llu traces sampled (%llu dropped), %llu decision ticks / "
        "%llu decisions -> %s\n",
        static_cast<unsigned long long>(summary.sampled),
        static_cast<unsigned long long>(summary.dropped),
        static_cast<unsigned long long>(summary.ticks),
        static_cast<unsigned long long>(summary.decisions), paths.c_str());
  }

  if (args.Has("csv")) {
    const std::string path = args.Get("csv");
    if (exp::WriteTimelineCsv(*app, path)) {
      std::printf("timeline written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}

int CmdTrain(const Args& args) {
  const int episodes = static_cast<int>(args.Num("episodes", exp::PretrainEpisodes()));
  std::printf("training PPO policy on the graph simulator (%d episodes)...\n",
              episodes);
  rl::TrainResult result;
  auto policy = exp::TrainBasePolicy(episodes, /*seed=*/1234, &result);
  std::printf("episodes=%d best-validation=%.3f\n", result.episodes_trained,
              result.best_validation_score);
  const std::string out = args.Get("out", exp::ModelDir() + "/base_policy.txt");
  if (!policy->SaveFile(out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("saved %s\n", out.c_str());
  return 0;
}

// `report` is `run` with telemetry forced into --out: the exporters already
// write the HTML report and run summary alongside the trace artifacts.
int CmdReport(const Args& args) {
  const std::string out_dir = args.Get("out", "topfull-report");
  Args forwarded = args;
  forwarded.options["trace-dir"] = out_dir;
  forwarded.options.erase("out");
  const int rc = CmdRun(forwarded);
  if (rc == 0) std::printf("report written under %s/\n", out_dir.c_str());
  return rc;
}

// `serve` replays a finished run's exported artifacts over HTTP so the same
// scrape targets work after the simulation has exited. `--name` picks a run
// inside the directory (default: lexicographically first *.metrics.prom).
int CmdServe(const Args& args) {
  const std::string dir =
      args.Get("dir", args.positional.empty() ? "topfull-report"
                                              : args.positional[0]);
  std::string name = args.Get("name");
  if (name.empty()) {
    const std::string suffix = ".metrics.prom";
    std::vector<std::string> found;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string file = entry.path().filename().string();
      if (file.size() > suffix.size() &&
          file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0) {
        found.push_back(file.substr(0, file.size() - suffix.size()));
      }
    }
    if (found.empty()) {
      std::fprintf(stderr, "no *.metrics.prom under %s\n", dir.c_str());
      return 2;
    }
    std::sort(found.begin(), found.end());
    name = found.front();
  }
  const auto slurp = [](const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream text;
    text << in.rdbuf();
    *out = text.str();
    return true;
  };
  std::string metrics, summary, alerts;
  if (!slurp(dir + "/" + name + ".metrics.prom", &metrics)) {
    std::fprintf(stderr, "cannot read %s/%s.metrics.prom\n", dir.c_str(),
                 name.c_str());
    return 2;
  }
  const bool have_summary = slurp(dir + "/" + name + ".summary.json", &summary);
  // Replay the time-series artifacts when the run wrote them: /query
  // evaluates against the reloaded store (samples are %.17g, so responses
  // match the live server byte for byte); /alerts serves the saved body.
  const bool have_alerts = slurp(dir + "/" + name + ".alerts.json", &alerts);
  std::unique_ptr<obs::Tsdb> tsdb;
  std::string tsdb_text;
  if (slurp(dir + "/" + name + ".tsdb.json", &tsdb_text)) {
    std::string error;
    tsdb = obs::TsdbFromJson(tsdb_text, &error);
    if (tsdb == nullptr) {
      std::fprintf(stderr, "ignoring %s/%s.tsdb.json: %s\n", dir.c_str(),
                   name.c_str(), error.c_str());
    }
  }

  obs::HttpServer server([&](const obs::HttpRequest& request) {
    const std::string path = request.target.substr(0, request.target.find('?'));
    obs::HttpResponse response;
    if (path == "/healthz") {
      response.body = "ok\n";
    } else if (path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = metrics;
    } else if (path == "/summary.json" && have_summary) {
      response.content_type = "application/json";
      response.body = summary;
    } else if (path == "/query" && tsdb != nullptr) {
      response = obs::HandleQueryRequest(request, *tsdb);
    } else if (path == "/alerts" && have_alerts) {
      response.content_type = "application/json";
      response.body = alerts;
    } else if (path == "/") {
      response.body = "topfull serve — finished run \"" + name +
                      "\"\n"
                      "  /metrics       Prometheus dump\n"
                      "  /healthz       liveness probe\n"
                      "  /summary.json  run summary JSON\n";
      if (tsdb != nullptr) response.body += "  /query         PromQL-subset query over the saved TSDB\n";
      if (have_alerts) response.body += "  /alerts        saved alert states + transitions\n";
    } else {
      response.status = 404;
      response.body = "not found\n";
    }
    return response;
  });
  std::string error;
  if (!server.Start(static_cast<int>(args.Num("port", 0)), &error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving %s/%s.* on http://127.0.0.1:%d/\n", dir.c_str(),
              name.c_str(), server.port());
  std::fflush(stdout);
  const double linger = args.Num("linger", -1.0);
  if (linger >= 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(linger));
  } else {
    while (true) {
      std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
  }
  server.Stop();
  return 0;
}

/// Shared --dir plumbing for `query`/`alerts`: resolves the run name (the
/// lexicographically first `*<suffix>` file when --name is absent) and
/// slurps `<dir>/<name><suffix>`. False with a message on stderr.
bool LoadRunArtifact(const Args& args, const std::string& suffix,
                     std::string* out) {
  const std::string dir = args.Get("dir");
  std::string name = args.Get("name");
  if (name.empty()) {
    std::vector<std::string> found;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string file = entry.path().filename().string();
      if (file.size() > suffix.size() &&
          file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0) {
        found.push_back(file.substr(0, file.size() - suffix.size()));
      }
    }
    if (found.empty()) {
      std::fprintf(stderr, "no *%s under %s\n", suffix.c_str(), dir.c_str());
      return false;
    }
    std::sort(found.begin(), found.end());
    name = found.front();
  }
  const std::string path = dir + "/" + name + suffix;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return true;
}

// `topfull query EXPR` evaluates a PromQL-subset expression against a live
// run (--url, over the embedded server's /query endpoint) or a finished
// run's .tsdb.json artifact (--dir). The --dir path builds the identical
// /query target and routes it through the same HandleQueryRequest the
// servers use, so both paths print byte-identical bodies.
int CmdQuery(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: topfull query EXPR (--url http://HOST:PORT | "
                         "--dir DIR [--name NAME])\n"
                         "                     [--time T | --start A --end B --step S]\n");
    return 2;
  }
  std::string target = "/query?expr=" + PercentEncode(args.positional[0]);
  if (args.Has("start") || args.Has("end") || args.Has("step")) {
    target += "&start=" + args.Get("start") + "&end=" + args.Get("end") +
              "&step=" + args.Get("step");
  } else if (args.Has("time")) {
    target += "&time=" + args.Get("time");
  }

  if (args.Has("url")) {
    std::string host;
    int port = 0;
    if (!ParseServerUrl(args.Get("url"), &host, &port)) {
      std::fprintf(stderr, "bad --url '%s' (want http://HOST:PORT)\n",
                   args.Get("url").c_str());
      return 2;
    }
    int status = 0;
    std::string body;
    if (!HttpGet(host, port, target, &status, &body)) {
      std::fprintf(stderr, "cannot reach %s:%d\n", host.c_str(), port);
      return 1;
    }
    std::fputs(body.c_str(), stdout);
    return status == 200 ? 0 : 1;
  }

  if (!args.Has("dir")) {
    std::fprintf(stderr, "query needs --url or --dir\n");
    return 2;
  }
  std::string text;
  if (!LoadRunArtifact(args, ".tsdb.json", &text)) return 2;
  std::string error;
  const std::unique_ptr<obs::Tsdb> tsdb = obs::TsdbFromJson(text, &error);
  if (tsdb == nullptr) {
    std::fprintf(stderr, "bad .tsdb.json: %s\n", error.c_str());
    return 2;
  }
  obs::HttpRequest request;
  request.method = "GET";
  request.target = target;
  request.version = "HTTP/1.1";
  const obs::HttpResponse response = obs::HandleQueryRequest(request, *tsdb);
  std::fputs(response.body.c_str(), stdout);
  return response.status == 200 ? 0 : 1;
}

// `topfull alerts` prints a run's alert states + transitions: --url asks a
// live server's /alerts endpoint, --dir prints the saved .alerts.json.
int CmdAlerts(const Args& args) {
  if (args.Has("url")) {
    std::string host;
    int port = 0;
    if (!ParseServerUrl(args.Get("url"), &host, &port)) {
      std::fprintf(stderr, "bad --url '%s' (want http://HOST:PORT)\n",
                   args.Get("url").c_str());
      return 2;
    }
    int status = 0;
    std::string body;
    if (!HttpGet(host, port, "/alerts", &status, &body)) {
      std::fprintf(stderr, "cannot reach %s:%d\n", host.c_str(), port);
      return 1;
    }
    std::fputs(body.c_str(), stdout);
    return status == 200 ? 0 : 1;
  }
  if (!args.Has("dir")) {
    std::fprintf(stderr, "alerts needs --url or --dir\n");
    return 2;
  }
  std::string body;
  if (!LoadRunArtifact(args, ".alerts.json", &body)) return 2;
  std::fputs(body.c_str(), stdout);
  return 0;
}

// `scenario list` prints the built-in pathology library; `scenario run`
// executes the scenario x controller conformance matrix (same engine as
// bench/scenario_matrix) and exits non-zero when a cell does not conform.
int CmdScenario(const Args& args) {
  const std::string sub =
      args.positional.empty() ? "list" : args.positional.front();

  std::vector<scenario::ScenarioSpec> specs;
  if (args.Has("profile")) {
    std::string error;
    const auto parsed = scenario::LoadScenarioProfile(args.Get("profile"), &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    specs = *parsed;
  } else {
    specs = scenario::BuiltinScenarios();
  }
  if (args.Has("scenario")) {
    const std::string name = args.Get("scenario");
    std::vector<scenario::ScenarioSpec> filtered;
    for (scenario::ScenarioSpec& spec : specs) {
      if (spec.name == name) filtered.push_back(std::move(spec));
    }
    if (filtered.empty()) {
      std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
      return 2;
    }
    specs = std::move(filtered);
  }

  if (sub == "list") {
    Table table("scenario library");
    table.SetHeader({"name", "app", "duration", "invariants", "description"});
    for (const scenario::ScenarioSpec& spec : specs) {
      std::string kinds;
      for (const scenario::Invariant& inv : spec.invariants) {
        if (!kinds.empty()) kinds += "+";
        kinds += scenario::InvariantKindName(inv.kind);
      }
      table.AddRow({spec.name, spec.app, Fmt(spec.duration_s, 0) + " s", kinds,
                    spec.description});
    }
    table.Print();
    return 0;
  }
  if (sub != "run") {
    std::fprintf(stderr, "unknown scenario subcommand '%s'\n", sub.c_str());
    return Usage();
  }

  const bool smoke = args.Has("smoke");
  if (smoke) {
    for (scenario::ScenarioSpec& spec : specs) spec = spec.TimeScaled(0.25);
  }
  scenario::MatrixOptions options;
  if (args.Has("controllers")) {
    options.controllers.clear();
    std::stringstream stream(args.Get("controllers"));
    std::string item;
    while (std::getline(stream, item, ',')) {
      if (!item.empty()) options.controllers.push_back(item);
    }
  }
  const std::vector<scenario::CellVerdict> verdicts =
      scenario::RunScenarioMatrix(specs, options);
  scenario::PrintMatrixReport(verdicts);
  if (args.Has("json")) {
    std::ofstream out(args.Get("json"));
    out << scenario::MatrixReportJson(verdicts);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.Get("json").c_str());
      return 2;
    }
  }
  for (const scenario::CellVerdict& cell : verdicts) {
    if (!cell.error.empty()) return 2;
  }
  if (smoke) return 0;
  return scenario::AllConform(verdicts) ? 0 : 1;
}

int CmdCompare(const Args& args) {
  if (args.positional.size() != 2) {
    std::fprintf(stderr, "compare needs exactly two summary files\n");
    return Usage();
  }
  obs::JsonValue docs[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(args.positional[i]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", args.positional[i].c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!obs::ParseJson(text.str(), &docs[i], &error)) {
      std::fprintf(stderr, "%s: %s\n", args.positional[i].c_str(), error.c_str());
      return 2;
    }
  }
  obs::CompareOptions options;
  options.rel_tol = args.Num("rel-tol", options.rel_tol);
  options.abs_tol = args.Num("abs-tol", options.abs_tol);
  const obs::CompareResult result =
      obs::CompareRunSummaries(docs[0], docs[1], options);
  std::printf("baseline:  %s\ncandidate: %s\n", args.positional[0].c_str(),
              args.positional[1].c_str());
  std::fputs(obs::FormatCompareResult(result, options).c_str(), stdout);
  if (result.HasRegression()) {
    std::printf("RESULT: regression\n");
    return 1;
  }
  std::printf("RESULT: ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (args.Has("threads")) {
    ThreadPool::SetGlobalThreads(static_cast<int>(args.Num("threads", 0)));
  }
  if (args.command == "run") return CmdRun(args);
  if (args.command == "inspect") return CmdInspect(args);
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "report") return CmdReport(args);
  if (args.command == "compare") return CmdCompare(args);
  if (args.command == "serve") return CmdServe(args);
  if (args.command == "query") return CmdQuery(args);
  if (args.command == "alerts") return CmdAlerts(args);
  if (args.command == "scenario") return CmdScenario(args);
  return Usage();
}
